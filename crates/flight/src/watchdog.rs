//! [`Watchdog`]: budget enforcement through [`Observer::checkpoint`].
//!
//! A watchdog wraps any inner observer, forwards every event to it, and
//! answers the engines' checkpoint polls by checking three budgets:
//!
//! - **steps** — tallied from [`Counter::Steps`] events;
//! - **head reversals** — tallied from [`Counter::HeadReversals`];
//! - **wall clock** — an [`Instant`] read every [`Budget::wall_poll_every`]
//!   checkpoints (default [`DEFAULT_WALL_POLL`]), so the common path costs
//!   two integer compares and no syscall. Latency-sensitive callers can
//!   tighten the stride to trade a few clock reads for earlier aborts.
//!
//! When a budget trips, the engine receives `Err(Abort)` from its next
//! `checkpoint()` call and converts it into `Error::RunAborted` — a
//! graceful unwind, not a panic, so batch runners keep going and can still
//! render the wrapped flight recorder's dump.

use std::time::{Duration, Instant};

use qa_obs::{Abort, Counter, Machine, Observer, Series};

/// Budgets enforced by a [`Watchdog`]. `None` disables a dimension.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum `Counter::Steps` total before aborting.
    pub max_steps: Option<u64>,
    /// Maximum `Counter::HeadReversals` total before aborting.
    pub max_reversals: Option<u64>,
    /// Maximum wall-clock time for the run.
    pub max_wall: Option<Duration>,
    /// How many checkpoints pass between wall-clock reads (the first
    /// checkpoint always reads). Defaults to [`DEFAULT_WALL_POLL`];
    /// smaller values detect a blown `max_wall` sooner at the cost of
    /// more `Instant::now` calls. Clamped to at least 1.
    pub wall_poll_every: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_steps: None,
            max_reversals: None,
            max_wall: None,
            wall_poll_every: DEFAULT_WALL_POLL,
        }
    }
}

impl Budget {
    /// No limits: the watchdog becomes a transparent forwarder.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limit total steps.
    pub fn steps(max: u64) -> Self {
        Budget {
            max_steps: Some(max),
            ..Budget::default()
        }
    }

    /// Add a head-reversal limit.
    pub fn with_reversals(mut self, max: u64) -> Self {
        self.max_reversals = Some(max);
        self
    }

    /// Add a wall-clock limit.
    pub fn with_wall(mut self, max: Duration) -> Self {
        self.max_wall = Some(max);
        self
    }

    /// Set the wall-clock polling stride (see
    /// [`Budget::wall_poll_every`]).
    pub fn with_wall_poll_every(mut self, every: u64) -> Self {
        self.wall_poll_every = every.max(1);
        self
    }
}

/// Default wall-clock polling stride: one `Instant` read per this many
/// checkpoints.
pub const DEFAULT_WALL_POLL: u64 = 1024;

/// Observer wrapper enforcing a [`Budget`]; all events are forwarded to the
/// inner observer unchanged.
#[derive(Debug)]
pub struct Watchdog<O> {
    inner: O,
    budget: Budget,
    steps: u64,
    reversals: u64,
    /// Checkpoints until the next wall-clock read; starts at 1 so the
    /// first checkpoint always polls.
    until_wall_poll: u64,
    started: Instant,
    tripped: Option<Abort>,
}

impl<O: Observer> Watchdog<O> {
    /// Wrap `inner`, enforcing `budget`. The wall clock starts now.
    pub fn new(inner: O, budget: Budget) -> Self {
        Watchdog {
            inner,
            budget,
            steps: 0,
            reversals: 0,
            until_wall_poll: 1,
            started: Instant::now(),
            tripped: None,
        }
    }

    /// The wrapped observer (e.g. to render a flight recorder's dump after
    /// an abort).
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consume the watchdog, returning the wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The abort this watchdog issued, if any.
    pub fn tripped(&self) -> Option<Abort> {
        self.tripped
    }

    /// Steps observed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Head reversals observed so far.
    pub fn reversals(&self) -> u64 {
        self.reversals
    }

    #[inline]
    fn check(&mut self) -> Result<(), Abort> {
        if let Some(a) = self.tripped {
            return Err(a);
        }
        if let Some(max) = self.budget.max_steps {
            if self.steps > max {
                return self.trip("steps", max, self.steps);
            }
        }
        if let Some(max) = self.budget.max_reversals {
            if self.reversals > max {
                return self.trip("head_reversals", max, self.reversals);
            }
        }
        if let Some(max) = self.budget.max_wall {
            // Reading the clock is the expensive part; amortize it over
            // the configured stride.
            self.until_wall_poll -= 1;
            if self.until_wall_poll == 0 {
                self.until_wall_poll = self.budget.wall_poll_every.max(1);
                let elapsed = self.started.elapsed();
                if elapsed > max {
                    return self.trip(
                        "wall_ms",
                        max.as_millis() as u64,
                        elapsed.as_millis() as u64,
                    );
                }
            }
        }
        Ok(())
    }

    fn trip(&mut self, what: &'static str, limit: u64, actual: u64) -> Result<(), Abort> {
        let abort = Abort {
            what,
            limit,
            actual,
        };
        self.tripped = Some(abort);
        Err(abort)
    }
}

impl<O: Observer> Observer for Watchdog<O> {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        match counter {
            Counter::Steps => self.steps += n,
            Counter::HeadReversals => self.reversals += n,
            _ => {}
        }
        self.inner.count(counter, n);
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        self.inner.record(series, value);
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        self.inner.config(state, pos, dir);
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        self.inner.phase_start(name);
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        self.inner.phase_end(name);
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        self.inner.selected(pos, state, sym);
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        self.inner.stay_assign(parent, child, state);
    }
    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        self.inner.state_visit(machine, state, sym);
    }
    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        self.inner.transition_fired(machine, from, sym, to);
    }
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Abort> {
        self.check()?;
        self.inner.checkpoint()
    }
    #[inline]
    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::NoopObserver;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut dog = Watchdog::new(NoopObserver, Budget::unlimited());
        for _ in 0..10_000 {
            dog.count(Counter::Steps, 1);
            assert_eq!(dog.checkpoint(), Ok(()));
        }
        assert!(dog.tripped().is_none());
    }

    #[test]
    fn step_budget_trips_and_stays_tripped() {
        let mut dog = Watchdog::new(NoopObserver, Budget::steps(5));
        for _ in 0..5 {
            dog.count(Counter::Steps, 1);
            assert_eq!(dog.checkpoint(), Ok(()));
        }
        dog.count(Counter::Steps, 1);
        let abort = dog.checkpoint().unwrap_err();
        assert_eq!(abort.what, "steps");
        assert_eq!(abort.limit, 5);
        assert_eq!(abort.actual, 6);
        // Once tripped, every later poll reports the same abort.
        assert_eq!(dog.checkpoint().unwrap_err(), abort);
        assert_eq!(dog.tripped(), Some(abort));
    }

    #[test]
    fn reversal_budget_trips() {
        let mut dog = Watchdog::new(NoopObserver, Budget::unlimited().with_reversals(2));
        dog.count(Counter::HeadReversals, 3);
        let abort = dog.checkpoint().unwrap_err();
        assert_eq!(abort.what, "head_reversals");
        assert_eq!(abort.actual, 3);
    }

    #[test]
    fn wall_budget_trips_on_the_polling_stride() {
        let mut dog = Watchdog::new(NoopObserver, Budget::unlimited().with_wall(Duration::ZERO));
        // check 0 reads the clock: elapsed > 0 always holds.
        let abort = dog.checkpoint().unwrap_err();
        assert_eq!(abort.what, "wall_ms");
    }

    #[test]
    fn wall_clock_is_polled_sparsely() {
        // With a generous wall budget the clock read on stride boundaries
        // must not trip.
        let mut dog = Watchdog::new(
            NoopObserver,
            Budget::unlimited().with_wall(Duration::from_secs(3600)),
        );
        for _ in 0..5000 {
            assert_eq!(dog.checkpoint(), Ok(()));
        }
    }

    #[test]
    fn tighter_wall_poll_stride_trips_sooner() {
        // Both dogs blow the same wall budget during the sleep; the one
        // with the tight stride notices within its stride, the default
        // stride coasts for ~1024 checkpoints first.
        let budget = Budget::unlimited().with_wall(Duration::from_millis(100));
        let mut tight = Watchdog::new(NoopObserver, budget.with_wall_poll_every(3));
        let mut loose = Watchdog::new(NoopObserver, budget);
        assert_eq!(loose.budget.wall_poll_every, DEFAULT_WALL_POLL);
        // First checkpoint polls the (still fresh) clock on both.
        assert_eq!(tight.checkpoint(), Ok(()));
        assert_eq!(loose.checkpoint(), Ok(()));
        std::thread::sleep(Duration::from_millis(150));
        // Tight stride: next poll lands within 3 checkpoints.
        let tripped_after = (1..=3)
            .find(|_| tight.checkpoint().is_err())
            .expect("tight stride trips within its stride");
        assert!(tripped_after <= 3);
        // Default stride: the next 1000 checkpoints don't even look.
        for _ in 0..1000 {
            assert_eq!(loose.checkpoint(), Ok(()));
        }
        // ...but the stride boundary still catches it.
        assert!((0..DEFAULT_WALL_POLL).any(|_| loose.checkpoint().is_err()));
    }

    #[test]
    fn events_forward_to_the_inner_observer() {
        use crate::recorder::FlightRecorder;
        let mut dog = Watchdog::new(FlightRecorder::with_capacity(8), Budget::steps(100));
        dog.count(Counter::Steps, 2);
        dog.config(1, 2, 1);
        dog.record(Series::TraceLength, 9);
        let rec = dog.into_inner();
        assert_eq!(rec.counter(Counter::Steps), 2);
        assert_eq!(rec.samples(Series::TraceLength), (1, 9));
        assert_eq!(rec.len(), 1);
    }
}
