//! [`Timeline`]: one worker's liveness history as seen by the
//! coordinator's poll loop.
//!
//! Each poll tick classifies the worker by its pulse endpoints:
//! `/healthz` unreachable → [`Health::Unreachable`], reachable but
//! `/readyz` still 503 → [`Health::Warming`], both green →
//! [`Health::Ready`]. The rendered timeline is run-length encoded
//! (`warming×2 ready×41 unreachable×3`), so a federated summary can show
//! every worker's life story in one line — including the moment a
//! chaos-killed worker stopped answering.

/// One poll tick's verdict on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// `/healthz` did not answer (dead, not yet serving, or hung).
    Unreachable,
    /// Alive but `/readyz` reports warming up.
    Warming,
    /// Alive and ready.
    Ready,
}

impl Health {
    fn name(self) -> &'static str {
        match self {
            Health::Unreachable => "unreachable",
            Health::Warming => "warming",
            Health::Ready => "ready",
        }
    }
}

/// Poll history of one worker, oldest first.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    polls: Vec<Health>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Append one poll verdict.
    pub fn record(&mut self, health: Health) {
        self.polls.push(health);
    }

    /// Number of polls recorded.
    pub fn len(&self) -> usize {
        self.polls.len()
    }

    /// Whether no polls were recorded.
    pub fn is_empty(&self) -> bool {
        self.polls.is_empty()
    }

    /// How many polls saw the given state.
    pub fn count(&self, health: Health) -> usize {
        self.polls.iter().filter(|h| **h == health).count()
    }

    /// Whether the worker was ever seen ready.
    pub fn was_ready(&self) -> bool {
        self.count(Health::Ready) > 0
    }

    /// Run-length encoded rendering, e.g. `warming×2 ready×40`.
    /// Empty timelines render as `no polls`.
    pub fn render(&self) -> String {
        if self.polls.is_empty() {
            return "no polls".to_string();
        }
        let mut out = String::new();
        let mut run: (Health, usize) = (self.polls[0], 0);
        for &h in &self.polls {
            if h == run.0 {
                run.1 += 1;
            } else {
                out.push_str(&format!("{}\u{d7}{} ", run.0.name(), run.1));
                run = (h, 1);
            }
        }
        out.push_str(&format!("{}\u{d7}{}", run.0.name(), run.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_run_length_encodes_the_history() {
        let mut t = Timeline::new();
        assert_eq!(t.render(), "no polls");
        for h in [
            Health::Warming,
            Health::Warming,
            Health::Ready,
            Health::Ready,
            Health::Ready,
            Health::Unreachable,
        ] {
            t.record(h);
        }
        assert_eq!(t.render(), "warming×2 ready×3 unreachable×1");
        assert_eq!(t.len(), 6);
        assert_eq!(t.count(Health::Ready), 3);
        assert!(t.was_ready());
    }
}
