//! Two-way deterministic ranked tree automata (Definition 4.1, after
//! Moriya), with the faithful *cut* configuration semantics.

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;
use qa_trees::{NodeId, Tree};

/// Whether a `(state, label)` pair takes part in up or down transitions.
///
/// The disjointness of `U` and `D` is what makes runs confluent: a node
/// holding a state can never choose between moving up and moving down, so
/// every maximal run visits each node in the same state sequence
/// (the paper's justification for calling these automata deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// Member of `U`: participates in up/root transitions.
    Up,
    /// Member of `D`: participates in down/leaf transitions.
    Down,
}

/// A two-way deterministic ranked tree automaton.
///
/// Transitions (Definition 4.1):
/// - `δ↓ : D × {1..m} → Q*` — a node in a down state hands a state to each
///   of its children (the cut replaces the node by its children);
/// - `δ_leaf : D → Q` — a leaf in a down state changes state in place;
/// - `δ↑ : U* → Q` — when all children of a node hold up states, they fold
///   into the parent (the transition sees each child's `(state, label)`
///   pair);
/// - `δ_root : U → Q` — the root alone in the cut changes state in place.
///
/// A run starts with the cut `{root}` in the initial state, is *maximal*
/// when no transition applies, and accepts iff it is maximal with the root
/// holding a final state.
#[derive(Clone, Debug)]
pub struct TwoWayRanked {
    alphabet_len: usize,
    num_states: usize,
    max_rank: usize,
    initial: StateId,
    finals: Vec<bool>,
    /// `polarity[state][symbol]`; `None` = the pair is in neither set.
    polarity: Vec<Vec<Option<Polarity>>>,
    delta_leaf: HashMap<(StateId, Symbol), StateId>,
    delta_root: HashMap<(StateId, Symbol), StateId>,
    delta_up: HashMap<Vec<(StateId, Symbol)>, StateId>,
    delta_down: HashMap<(StateId, Symbol, usize), Vec<StateId>>,
}

/// Builder validating Definition 4.1's side conditions.
#[derive(Clone, Debug)]
pub struct TwoWayRankedBuilder {
    inner: TwoWayRanked,
}

/// Collect and sort an iterator; used to make validation-error selection
/// independent of `HashMap` iteration order.
fn sorted<T: Ord>(it: impl Iterator<Item = T>) -> Vec<T> {
    let mut v: Vec<T> = it.collect();
    v.sort();
    v
}

impl TwoWayRankedBuilder {
    /// Start a machine over `alphabet_len` symbols and rank `max_rank`.
    pub fn new(alphabet_len: usize, max_rank: usize) -> Self {
        TwoWayRankedBuilder {
            inner: TwoWayRanked {
                alphabet_len,
                num_states: 0,
                max_rank,
                initial: StateId::from_index(0),
                finals: Vec::new(),
                polarity: Vec::new(),
                delta_leaf: HashMap::new(),
                delta_root: HashMap::new(),
                delta_up: HashMap::new(),
                delta_down: HashMap::new(),
            },
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.inner.num_states);
        self.inner.num_states += 1;
        self.inner.finals.push(false);
        self.inner
            .polarity
            .push(vec![None; self.inner.alphabet_len]);
        id
    }

    /// Set the initial state.
    pub fn set_initial(&mut self, state: StateId) -> &mut Self {
        self.inner.initial = state;
        self
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) -> &mut Self {
        self.inner.finals[state.index()] = is_final;
        self
    }

    /// Put `(state, label)` into `U` or `D`.
    pub fn set_polarity(&mut self, state: StateId, label: Symbol, p: Polarity) -> &mut Self {
        self.inner.polarity[state.index()][label.index()] = Some(p);
        self
    }

    /// Put `(state, ·)` into `U` or `D` for every label.
    pub fn set_polarity_all(&mut self, state: StateId, p: Polarity) -> &mut Self {
        for l in 0..self.inner.alphabet_len {
            self.inner.polarity[state.index()][l] = Some(p);
        }
        self
    }

    /// Define `δ↓(state, label, arity) = children_states`.
    pub fn set_down(
        &mut self,
        state: StateId,
        label: Symbol,
        children_states: &[StateId],
    ) -> &mut Self {
        self.inner.delta_down.insert(
            (state, label, children_states.len()),
            children_states.to_vec(),
        );
        self
    }

    /// Define `δ_leaf(state, label) = next`.
    pub fn set_leaf(&mut self, state: StateId, label: Symbol, next: StateId) -> &mut Self {
        self.inner.delta_leaf.insert((state, label), next);
        self
    }

    /// Define `δ_root(state, label) = next`.
    pub fn set_root(&mut self, state: StateId, label: Symbol, next: StateId) -> &mut Self {
        self.inner.delta_root.insert((state, label), next);
        self
    }

    /// Define `δ↑((q₁,σ₁)…(qₙ,σₙ)) = next`.
    pub fn set_up(&mut self, children: &[(StateId, Symbol)], next: StateId) -> &mut Self {
        self.inner.delta_up.insert(children.to_vec(), next);
        self
    }

    /// Validate and finish.
    pub fn build(self) -> Result<TwoWayRanked> {
        let m = self.inner;
        if m.num_states == 0 {
            return Err(Error::ill_formed("2DTAr", "no states"));
        }
        let pol = |q: StateId, s: Symbol| m.polarity[q.index()][s.index()];
        // Validation iterates sorted keys so that, when several entries
        // violate an invariant, the reported one is deterministic (raw
        // HashMap order is per-instance random).
        for (q, s) in sorted(m.delta_leaf.keys().copied()) {
            if pol(q, s) != Some(Polarity::Down) {
                return Err(Error::ill_formed(
                    "2DTAr",
                    format!("δ_leaf defined on non-D pair ({q:?}, {s:?})"),
                ));
            }
        }
        for (q, s, _) in sorted(m.delta_down.keys().copied()) {
            if pol(q, s) != Some(Polarity::Down) {
                return Err(Error::ill_formed(
                    "2DTAr",
                    format!("δ↓ defined on non-D pair ({q:?}, {s:?})"),
                ));
            }
        }
        for (q, s) in sorted(m.delta_root.keys().copied()) {
            if pol(q, s) != Some(Polarity::Up) {
                return Err(Error::ill_formed(
                    "2DTAr",
                    format!("δ_root defined on non-U pair ({q:?}, {s:?})"),
                ));
            }
        }
        for seq in sorted(m.delta_up.keys().cloned()) {
            let seq = &seq;
            if seq.is_empty() || seq.len() > m.max_rank {
                return Err(Error::ill_formed(
                    "2DTAr",
                    format!("δ↑ arity {} out of range", seq.len()),
                ));
            }
            for &(q, s) in seq {
                if pol(q, s) != Some(Polarity::Up) {
                    return Err(Error::ill_formed(
                        "2DTAr",
                        format!("δ↑ mentions non-U pair ({q:?}, {s:?})"),
                    ));
                }
            }
        }
        for (&(_, _, n), v) in &m.delta_down {
            if v.len() != n || n == 0 || n > m.max_rank {
                return Err(Error::ill_formed(
                    "2DTAr",
                    format!(
                        "δ↓ must emit exactly the arity many states (got {} for arity {n})",
                        v.len()
                    ),
                ));
            }
        }
        Ok(m)
    }
}

/// Record of a maximal run.
#[derive(Clone, Debug)]
pub struct RankedRunRecord {
    /// Whether the final configuration was accepting (cut = {root}, final
    /// state).
    pub accepted: bool,
    /// For each node, the states it assumed across the run (first-assumption
    /// order) — `Assumed^A(t, v)` of Section 4.2.
    pub assumed: Vec<Vec<StateId>>,
    /// Work performed: [`TwoWayRanked::run_scheduled`] counts transitions
    /// fired; the worklist [`TwoWayRanked::run`] counts node examinations
    /// (an upper bound on transitions). Both are capped by the fuel budget.
    pub steps: u64,
}

impl TwoWayRanked {
    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Maximum rank.
    pub fn max_rank(&self) -> usize {
        self.max_rank
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// The polarity of `(state, label)`.
    pub fn polarity(&self, state: StateId, label: Symbol) -> Option<Polarity> {
        self.polarity[state.index()][label.index()]
    }

    /// `δ↓(state, label, arity)`.
    pub fn down(&self, state: StateId, label: Symbol, arity: usize) -> Option<&[StateId]> {
        self.delta_down
            .get(&(state, label, arity))
            .map(|v| v.as_slice())
    }

    /// `δ_leaf(state, label)`.
    pub fn leaf(&self, state: StateId, label: Symbol) -> Option<StateId> {
        self.delta_leaf.get(&(state, label)).copied()
    }

    /// `δ_root(state, label)`.
    pub fn root(&self, state: StateId, label: Symbol) -> Option<StateId> {
        self.delta_root.get(&(state, label)).copied()
    }

    /// `δ↑(children pairs)`.
    pub fn up(&self, children: &[(StateId, Symbol)]) -> Option<StateId> {
        self.delta_up.get(children).copied()
    }

    /// Default run fuel for `tree`: generous but finite, so genuine loops
    /// surface as [`Error::FuelExhausted`] rather than hangs.
    pub fn default_fuel(&self, tree: &Tree) -> u64 {
        64 * (self.num_states as u64) * (tree.num_nodes() as u64) + 1024
    }

    /// Run to a maximal configuration with a worklist engine: after a
    /// transition fires only the affected nodes are re-examined, so typical
    /// runs cost O(steps + nodes) instead of a full rescan per step.
    /// Confluence (Section 4.1) makes the result identical to any schedule
    /// of [`TwoWayRanked::run_scheduled`] — property-tested.
    pub fn run(&self, tree: &Tree) -> Result<RankedRunRecord> {
        self.run_with(tree, &mut NoopObserver)
    }

    /// [`TwoWayRanked::run`] with an [`Observer`]: each node examination is
    /// a [`Counter::CutRecomputations`], each fired transition a
    /// [`Counter::Steps`], and the total step count is recorded under
    /// [`Series::RunSteps`]. Every state assignment is also reported as a
    /// configuration event `(state, node, dir)` with dir +1 for δ↓ hand-offs
    /// to children, −1 for δ↑ folds into the parent, and 0 for in-place
    /// changes (initial placement, δ_leaf, δ_root), giving tree runs a
    /// replayable trace. With [`NoopObserver`] this monomorphizes to
    /// exactly `run`.
    pub fn run_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Result<RankedRunRecord> {
        if tree.rank() > self.max_rank {
            return Err(Error::domain(format!(
                "tree rank {} exceeds automaton rank {}",
                tree.rank(),
                self.max_rank
            )));
        }
        let fuel = self.default_fuel(tree);
        let n = tree.num_nodes();
        let mut state: Vec<Option<StateId>> = vec![None; n];
        let mut assumed: Vec<Vec<StateId>> = vec![Vec::new(); n];
        let root = tree.root();
        state[root.index()] = Some(self.initial);
        assumed[root.index()].push(self.initial);
        obs.config(self.initial.index() as u32, root.index() as u32, 0);
        let mut steps = 0u64;

        let assume = |assumed: &mut Vec<Vec<StateId>>, v: NodeId, q: StateId| {
            let list = &mut assumed[v.index()];
            if !list.contains(&q) {
                list.push(q);
            }
        };

        let mut queue: std::collections::VecDeque<NodeId> = tree.nodes().collect();
        let mut queued = vec![true; n];
        let enqueue =
            |queue: &mut std::collections::VecDeque<NodeId>, queued: &mut Vec<bool>, v: NodeId| {
                if !queued[v.index()] {
                    queued[v.index()] = true;
                    queue.push_back(v);
                }
            };

        while let Some(v) = queue.pop_front() {
            queued[v.index()] = false;
            loop {
                if let Err(a) = obs.checkpoint() {
                    obs.count(Counter::BudgetTrips, 1);
                    return Err(Error::aborted(a.what, a.limit, a.actual));
                }
                steps += 1;
                if steps > fuel {
                    obs.count(Counter::BudgetTrips, 1);
                    return Err(Error::FuelExhausted { budget: fuel });
                }
                obs.count(Counter::CutRecomputations, 1);
                let label = tree.label(v);
                if let Some(q) = state[v.index()] {
                    obs.state_visit(Machine::Qar, q.index() as u32, label.index() as u32);
                    match self.polarity(q, label) {
                        Some(Polarity::Down) if tree.is_leaf(v) => {
                            if let Some(q2) = self.leaf(q, label) {
                                obs.count(Counter::Steps, 1);
                                obs.transition_fired(
                                    Machine::Qar,
                                    q.index() as u32,
                                    label.index() as u32,
                                    q2.index() as u32,
                                );
                                obs.config(q2.index() as u32, v.index() as u32, 0);
                                state[v.index()] = Some(q2);
                                assume(&mut assumed, v, q2);
                                if let Some(p) = tree.parent(v) {
                                    enqueue(&mut queue, &mut queued, p);
                                }
                                continue;
                            }
                        }
                        Some(Polarity::Down) => {
                            if let Some(down) = self.down(q, label, tree.arity(v)) {
                                obs.count(Counter::Steps, 1);
                                let kids_states = down.to_vec();
                                state[v.index()] = None;
                                for (&c, q2) in tree.children(v).iter().zip(kids_states) {
                                    obs.transition_fired(
                                        Machine::Qar,
                                        q.index() as u32,
                                        label.index() as u32,
                                        q2.index() as u32,
                                    );
                                    obs.config(q2.index() as u32, c.index() as u32, 1);
                                    state[c.index()] = Some(q2);
                                    assume(&mut assumed, c, q2);
                                    enqueue(&mut queue, &mut queued, c);
                                }
                                // re-queue v for the all-children-already-up
                                // case; settling children wake it otherwise.
                                enqueue(&mut queue, &mut queued, v);
                                break;
                            }
                        }
                        Some(Polarity::Up) if v == root => {
                            if let Some(q2) = self.root(q, label) {
                                obs.count(Counter::Steps, 1);
                                obs.transition_fired(
                                    Machine::Qar,
                                    q.index() as u32,
                                    label.index() as u32,
                                    q2.index() as u32,
                                );
                                obs.config(q2.index() as u32, root.index() as u32, 0);
                                state[root.index()] = Some(q2);
                                assume(&mut assumed, root, q2);
                                continue;
                            }
                        }
                        _ => {}
                    }
                }
                // up transition at v (children all in cut holding U pairs)
                if !tree.is_leaf(v) && state[v.index()].is_none() {
                    let mut pairs = Vec::with_capacity(tree.arity(v));
                    let mut ok = true;
                    for &c in tree.children(v) {
                        match state[c.index()] {
                            Some(q) if self.polarity(q, tree.label(c)) == Some(Polarity::Up) => {
                                pairs.push((q, tree.label(c)));
                            }
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        if let Some(q2) = self.up(&pairs) {
                            obs.count(Counter::Steps, 1);
                            if obs.is_enabled() {
                                for &(q, l) in &pairs {
                                    obs.transition_fired(
                                        Machine::Qar,
                                        q.index() as u32,
                                        l.index() as u32,
                                        q2.index() as u32,
                                    );
                                }
                            }
                            obs.config(q2.index() as u32, v.index() as u32, -1);
                            for &c in tree.children(v) {
                                state[c.index()] = None;
                            }
                            state[v.index()] = Some(q2);
                            assume(&mut assumed, v, q2);
                            if let Some(p) = tree.parent(v) {
                                enqueue(&mut queue, &mut queued, p);
                            }
                            continue;
                        }
                    }
                }
                break;
            }
        }
        obs.record(Series::RunSteps, steps);
        let accepted = state[root.index()].is_some_and(|q| self.is_final(q))
            && state.iter().filter(|s| s.is_some()).count() == 1;
        Ok(RankedRunRecord {
            accepted,
            assumed,
            steps,
        })
    }

    /// Run with an explicit fuel bound and a *schedule*: when several
    /// transitions are enabled, `pick(n)` chooses which of the `n` enabled
    /// ones fires. Confluence (Section 4.1) means the choice cannot affect
    /// per-node state sequences; the property tests exercise exactly this.
    pub fn run_scheduled(
        &self,
        tree: &Tree,
        fuel: u64,
        mut pick: impl FnMut(usize) -> usize,
    ) -> Result<RankedRunRecord> {
        if tree.rank() > self.max_rank {
            return Err(Error::domain(format!(
                "tree rank {} exceeds automaton rank {}",
                tree.rank(),
                self.max_rank
            )));
        }
        let n = tree.num_nodes();
        // cut membership + state per node
        let mut state: Vec<Option<StateId>> = vec![None; n];
        let mut assumed: Vec<Vec<StateId>> = vec![Vec::new(); n];
        let root = tree.root();
        state[root.index()] = Some(self.initial);
        assumed[root.index()].push(self.initial);
        let mut steps = 0u64;

        #[derive(Clone, Copy, Debug)]
        enum Move {
            Down(NodeId),
            Leaf(NodeId),
            Up(NodeId),
            Root,
        }

        let assume = |assumed: &mut Vec<Vec<StateId>>, v: NodeId, q: StateId| {
            let list = &mut assumed[v.index()];
            if !list.contains(&q) {
                list.push(q);
            }
        };

        loop {
            // Collect enabled moves.
            let mut enabled: Vec<Move> = Vec::new();
            for v in tree.nodes() {
                let Some(q) = state[v.index()] else { continue };
                let label = tree.label(v);
                match self.polarity(q, label) {
                    Some(Polarity::Down) => {
                        if tree.is_leaf(v) {
                            if self.leaf(q, label).is_some() {
                                enabled.push(Move::Leaf(v));
                            }
                        } else if self.down(q, label, tree.arity(v)).is_some() {
                            enabled.push(Move::Down(v));
                        }
                    }
                    Some(Polarity::Up) if v == root && self.root(q, label).is_some() => {
                        enabled.push(Move::Root);
                    }
                    Some(Polarity::Up) => {}
                    None => {}
                }
            }
            // Up moves: parents whose children are all in the cut with U
            // pairs and a defined δ↑ entry.
            for v in tree.nodes() {
                if tree.is_leaf(v) || state[v.index()].is_some() {
                    continue;
                }
                let mut pairs = Vec::with_capacity(tree.arity(v));
                let mut ok = true;
                for &c in tree.children(v) {
                    match state[c.index()] {
                        Some(q) if self.polarity(q, tree.label(c)) == Some(Polarity::Up) => {
                            pairs.push((q, tree.label(c)));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && self.up(&pairs).is_some() {
                    enabled.push(Move::Up(v));
                }
            }

            if enabled.is_empty() {
                let accepted = state[root.index()].is_some_and(|q| self.is_final(q))
                    && state.iter().filter(|s| s.is_some()).count() == 1;
                return Ok(RankedRunRecord {
                    accepted,
                    assumed,
                    steps,
                });
            }

            steps += 1;
            if steps > fuel {
                return Err(Error::FuelExhausted { budget: fuel });
            }

            let mv = enabled[pick(enabled.len()) % enabled.len()];
            match mv {
                Move::Leaf(v) => {
                    let q = state[v.index()].expect("enabled");
                    let q2 = self.leaf(q, tree.label(v)).expect("enabled");
                    state[v.index()] = Some(q2);
                    assume(&mut assumed, v, q2);
                }
                Move::Root => {
                    let q = state[root.index()].expect("enabled");
                    let q2 = self.root(q, tree.label(root)).expect("enabled");
                    state[root.index()] = Some(q2);
                    assume(&mut assumed, root, q2);
                }
                Move::Down(v) => {
                    let q = state[v.index()].expect("enabled");
                    let kids_states = self
                        .down(q, tree.label(v), tree.arity(v))
                        .expect("enabled")
                        .to_vec();
                    state[v.index()] = None;
                    for (&c, q2) in tree.children(v).iter().zip(kids_states) {
                        state[c.index()] = Some(q2);
                        assume(&mut assumed, c, q2);
                    }
                }
                Move::Up(v) => {
                    let pairs: Vec<(StateId, Symbol)> = tree
                        .children(v)
                        .iter()
                        .map(|&c| (state[c.index()].expect("enabled"), tree.label(c)))
                        .collect();
                    let q2 = self.up(&pairs).expect("enabled");
                    for &c in tree.children(v) {
                        state[c.index()] = None;
                    }
                    state[v.index()] = Some(q2);
                    assume(&mut assumed, v, q2);
                }
            }
        }
    }

    /// Whether the automaton accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> Result<bool> {
        Ok(self.run(tree)?.accepted)
    }
}

/// Example 4.2: the two-way Boolean-circuit automaton over
/// `{AND, OR, 0, 1}` accepting full binary circuits that evaluate to 1.
///
/// States: `s` (descend), `u` (leaf evaluated), value pairs `(i, j)`, and
/// two verdict states `v0`/`v1` at the root (`F = {v1}`). The paper's
/// transition listing is completed with the mixed leaf/inner-child up
/// transitions it elides.
pub fn example_4_2(alphabet: &qa_base::Alphabet) -> TwoWayRanked {
    build_circuit_machine(alphabet, false).0
}

/// The state inventory of [`example_4_2`], for reuse by Example 4.4.
pub(crate) fn build_circuit_machine(
    alphabet: &qa_base::Alphabet,
    all_final: bool,
) -> (TwoWayRanked, CircuitStates) {
    let and = alphabet.symbol("AND");
    let or = alphabet.symbol("OR");
    let zero = alphabet.symbol("0");
    let one = alphabet.symbol("1");
    let mut b = TwoWayRankedBuilder::new(alphabet.len(), 2);
    let s = b.add_state();
    let u = b.add_state();
    let pair = |i: usize, j: usize| StateId::from_index(2 + 2 * i + j);
    for _ in 0..4 {
        b.add_state();
    }
    let v0 = b.add_state();
    let v1 = b.add_state();
    b.set_initial(s);
    if all_final {
        for i in 0..b.inner.num_states {
            b.set_final(StateId::from_index(i), true);
        }
    } else {
        b.set_final(v1, true);
    }

    b.set_polarity_all(s, Polarity::Down);
    b.set_polarity_all(u, Polarity::Up);
    for i in 0..2 {
        for j in 0..2 {
            b.set_polarity_all(pair(i, j), Polarity::Up);
        }
    }
    b.set_polarity_all(v0, Polarity::Up);
    b.set_polarity_all(v1, Polarity::Up);

    // (1) descend
    for op in [and, or] {
        b.set_down(s, op, &[s, s]);
    }
    // (2) leaves flip to u
    for leaf in [zero, one] {
        b.set_leaf(s, leaf, u);
    }
    // value of a child from its (state, label) pair
    let val = |q: StateId, l: Symbol| -> Option<usize> {
        if q == u {
            Some(if l == one { 1 } else { 0 })
        } else if q.index() >= 2 && q.index() < 6 {
            let (i, j) = ((q.index() - 2) / 2, (q.index() - 2) % 2);
            Some(if l == and {
                i & j
            } else if l == or {
                i | j
            } else {
                return None;
            })
        } else {
            None
        }
    };
    // (3)+(4) with the mixed cases: fold children values into the parent
    let child_pairs: Vec<(StateId, Symbol)> = {
        let mut v = vec![(u, zero), (u, one)];
        for i in 0..2 {
            for j in 0..2 {
                for op in [and, or] {
                    v.push((pair(i, j), op));
                }
            }
        }
        v
    };
    let mut ups: Vec<(Vec<(StateId, Symbol)>, StateId)> = Vec::new();
    for &c1 in &child_pairs {
        for &c2 in &child_pairs {
            if let (Some(i), Some(j)) = (val(c1.0, c1.1), val(c2.0, c2.1)) {
                ups.push((vec![c1, c2], pair(i, j)));
            }
        }
    }
    for (seq, q) in ups {
        b.set_up(&seq, q);
    }
    // (5) root verdict
    for i in 0..2 {
        for j in 0..2 {
            b.set_root(pair(i, j), and, if i & j == 1 { v1 } else { v0 });
            b.set_root(pair(i, j), or, if i | j == 1 { v1 } else { v0 });
        }
    }
    // single-leaf circuits: u at the root
    b.set_root(u, zero, v0);
    b.set_root(u, one, v1);

    let machine = b.build().expect("example 4.2 is well-formed");
    (
        machine,
        CircuitStates {
            u,
            v1,
            pair_base: 2,
        },
    )
}

/// State handles of the Example 4.2 machine.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CircuitStates {
    pub u: StateId,
    pub v1: StateId,
    pub pair_base: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    #[test]
    fn example_4_2_accepts_true_circuits() {
        let mut a = alpha();
        let m = example_4_2(&a);
        for (s, val) in [
            ("1", true),
            ("0", false),
            ("(AND 1 1)", true),
            ("(AND 1 0)", false),
            ("(OR 0 1)", true),
            ("(OR (AND 1 1) (AND 0 0))", true),
            ("(AND (OR 1 0) (AND (OR 0 0) 1))", false),
            ("(AND (AND 1 1) (OR 0 (AND 1 1)))", true),
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(m.accepts(&t).unwrap(), val, "{s}");
        }
    }

    #[test]
    fn run_matches_one_way_circuit_on_random_trees() {
        use qa_base::rng::StdRng;
        let a = alpha();
        let m = example_4_2(&a);
        let one_way = super::super::Dbta::boolean_circuit(&a);
        let inner = [a.symbol("AND"), a.symbol("OR")];
        let leaves = [a.symbol("0"), a.symbol("1")];
        let mut rng = StdRng::seed_from_u64(5);
        for size in [0usize, 1, 3, 8, 20] {
            for _ in 0..5 {
                let t = qa_trees::generate::random_full_binary(&mut rng, &inner, &leaves, size);
                assert_eq!(
                    m.accepts(&t).unwrap(),
                    one_way.accepts(&t),
                    "{}",
                    t.render(&a)
                );
            }
        }
    }

    #[test]
    fn assumed_states_record_the_evaluation() {
        let mut a = alpha();
        let m = example_4_2(&a);
        let t = from_sexpr("(AND 1 0)", &mut a).unwrap();
        let rec = m.run(&t).unwrap();
        // root assumed: s, then pair(1,0) = index 2+2*1+0 = 4, then v0 = 6
        let root_states: Vec<usize> = rec.assumed[t.root().index()]
            .iter()
            .map(|q| q.index())
            .collect();
        assert_eq!(root_states, vec![0, 4, 6]);
        // each leaf assumed s then u
        for &leaf in t.children(t.root()) {
            let states: Vec<usize> = rec.assumed[leaf.index()]
                .iter()
                .map(|q| q.index())
                .collect();
            assert_eq!(states, vec![0, 1]);
        }
    }

    #[test]
    fn confluence_under_random_schedules() {
        use qa_base::rng::Rng;
        use qa_base::rng::StdRng;
        let mut a = alpha();
        let m = example_4_2(&a);
        let t = from_sexpr("(OR (AND 1 0) (OR 1 1))", &mut a).unwrap();
        let reference = m.run(&t).unwrap();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rec = m
                .run_scheduled(&t, m.default_fuel(&t), |n| rng.gen_range(0..n))
                .unwrap();
            assert_eq!(rec.accepted, reference.accepted);
            assert_eq!(rec.assumed, reference.assumed, "seed {seed}");
        }
    }

    #[test]
    fn rank_mismatch_is_a_domain_error() {
        let mut a = alpha();
        let m = example_4_2(&a);
        let t = from_sexpr("(AND 1 1 1)", &mut a).unwrap();
        assert!(matches!(m.run(&t), Err(Error::Domain { .. })));
    }

    #[test]
    fn builder_validates_polarities() {
        let a = alpha();
        let mut b = TwoWayRankedBuilder::new(a.len(), 2);
        let q = b.add_state();
        // δ_leaf on a pair not in D
        b.set_leaf(q, a.symbol("0"), q);
        assert!(b.build().is_err());

        let mut b = TwoWayRankedBuilder::new(a.len(), 2);
        let q = b.add_state();
        b.set_polarity_all(q, Polarity::Down);
        // δ↓ arity mismatch
        b.set_down(q, a.symbol("AND"), &[q]);
        let m = b.build().unwrap();
        assert!(m.down(q, a.symbol("AND"), 1).is_some());

        let mut b = TwoWayRankedBuilder::new(a.len(), 2);
        let q = b.add_state();
        b.set_polarity_all(q, Polarity::Up);
        b.set_up(&[], q);
        assert!(b.build().is_err(), "empty δ↑ sequence rejected");
    }

    #[test]
    fn non_maximal_cut_rejects() {
        // a machine that descends and stops at the leaves: cut != {root}.
        let a = alpha();
        let mut b = TwoWayRankedBuilder::new(a.len(), 2);
        let s = b.add_state();
        b.set_initial(s);
        b.set_final(s, true);
        b.set_polarity_all(s, Polarity::Down);
        for op in [a.symbol("AND"), a.symbol("OR")] {
            b.set_down(s, op, &[s, s]);
        }
        let m = b.build().unwrap();
        let mut a2 = a.clone();
        let t = from_sexpr("(AND 1 0)", &mut a2).unwrap();
        // leaves hold s (a D pair) but δ_leaf is undefined: maximal, but the
        // root is not in the cut → reject.
        assert!(!m.accepts(&t).unwrap());
    }
}
