//! Section 6 end to end: non-emptiness, containment, equivalence, and the
//! Proposition 6.1 corridor-tiling reduction.
//!
//! ```sh
//! cargo run --example decision_procedures
//! ```

use query_automata::decision::{ranked_decisions, string_decisions, tiling};
use query_automata::prelude::*;

fn main() -> Result<()> {
    let sigma = Alphabet::from_names(["0", "1"]);

    // ── String query automata ────────────────────────────────────────────
    let odd = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    let mut even = query_automata::twoway::string_qa::example_3_4_qa(&sigma);
    // flip the selection to even positions from the right (state s2)
    even.set_selecting(
        query_automata::strings::StateId::from_index(1),
        sigma.symbol("1"),
        false,
    );
    even.set_selecting(
        query_automata::strings::StateId::from_index(2),
        sigma.symbol("1"),
        true,
    );

    println!(
        "same underlying language: {}",
        string_decisions::language_equivalence(&odd, &even)
    );
    match string_decisions::equivalence(&odd, &even) {
        Ok(()) => println!("queries equivalent"),
        Err((w, left)) => println!(
            "queries differ: {} selects position {} of {:?}",
            if left { "odd-side" } else { "even-side" },
            w.position,
            sigma.render(&w.word)
        ),
    }

    // ── Ranked query automata ────────────────────────────────────────────
    let circuits = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let full = example_4_4(&circuits);
    let mut and_only = example_4_4(&circuits);
    for s in 0..and_only.machine().num_states() {
        and_only.set_selecting(
            query_automata::strings::StateId::from_index(s),
            circuits.symbol("OR"),
            false,
        );
    }
    println!(
        "\nand_only ⊑ full: {}",
        ranked_decisions::containment(&and_only, &full)?.is_none()
    );
    if let Some(w) = ranked_decisions::containment(&full, &and_only)? {
        println!(
            "full ⋢ and_only, witness {} node {:?}",
            w.tree.render(&circuits),
            w.node
        );
    }

    // ── Proposition 6.1: corridor tiling ─────────────────────────────────
    // Vertical rules force progress 0→1: player one wins at any width.
    let inst = tiling::TilingInstance {
        num_tiles: 2,
        horizontal: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
        vertical: vec![(0, 1), (1, 1)],
        bottom: vec![0, 0],
        top: vec![1, 1],
    };
    let winner = tiling::solve_game(&inst)?;
    println!("\ncorridor game: player one wins = {winner}");
    let machine = tiling::to_tree_automaton(&inst)?;
    println!(
        "reduction produced a 2DTAr with {} states over {} tile symbols",
        machine.num_states(),
        machine.alphabet_len()
    );
    // turn language emptiness into query emptiness with a select-all λ
    let mut qa = RankedQa::new(machine);
    for s in 0..qa.machine().num_states() {
        for t in 0..qa.machine().alphabet_len() {
            qa.set_selecting(
                query_automata::strings::StateId::from_index(s),
                Symbol::from_index(t),
                true,
            );
        }
    }
    match ranked_decisions::non_emptiness(&qa)? {
        Some(w) => {
            let names = tiling::strategy_alphabet(&inst);
            println!("winning strategy tree: {}", w.tree.render(&names));
        }
        None => println!("no strategy tree: player one loses"),
    }
    Ok(())
}
