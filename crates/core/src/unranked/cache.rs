//! Memoized up/stay decisions for unranked machines (the qa-par
//! `BehaviorCache` layer for SQAu evaluation).
//!
//! In an unranked run every inner node folds by reading its children's
//! `(state, label)` pair string: through the up classifier (`L↑`), the stay
//! matcher (`U_stay`) and — for stay transitions — a full GSQA run
//! (Definition 5.11). All three are pure functions of the pair string and
//! the machine, so an [`UpCache`] interns the final decision per distinct
//! pair string. Boiret et al. and Piao & Salomaa both observe that unranked
//! evaluation cost is dominated by exactly this horizontal recomputation:
//! across a document batch the same child strings (e.g. `1 1 0 1` under an
//! `OR`) recur constantly, and each repeat becomes a single hash lookup
//! instead of three automaton runs.

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Observer};
use qa_strings::StateId;

use super::stay::pair_symbol;
use super::twoway::TwoWayUnranked;

/// The memoized verdict for one children pair-string.
#[derive(Clone, Debug)]
pub(crate) enum UpEntry {
    /// The string lies in `L↑(q)`: fold the children into `q` at the parent.
    Up(StateId),
    /// The string lies in `U_stay`: reassign the children to these states
    /// (validated to be one state per child).
    Stay(Vec<StateId>),
    /// Neither an up nor a stay transition applies.
    Stuck,
}

/// Interns up/stay decisions keyed by hash-consed children pair-strings.
///
/// Used by [`TwoWayUnranked::run_cached`] and [`UnrankedQa::query_cached`];
/// results are identical to the uncached run. Reports
/// [`Counter::CacheHits`] / [`Counter::CacheMisses`] to the observer passed
/// to each run. The cache is keyed to one machine: it records a fingerprint
/// of the machine's up/stay structure and transparently resets itself when
/// handed a different machine.
///
/// Failed stay applications (GSQA errors, wrong output arity) are *not*
/// cached, so errors surface identically on every run.
///
/// [`TwoWayUnranked::run_cached`]: super::TwoWayUnranked::run_cached
/// [`UnrankedQa::query_cached`]: super::UnrankedQa::query_cached
#[derive(Debug, Default)]
pub struct UpCache {
    /// encoded pair-string → decision.
    map: HashMap<Box<[u32]>, UpEntry>,
    /// Fingerprint of the machine the decisions belong to.
    fingerprint: Option<u64>,
    hits: u64,
    misses: u64,
}

impl UpCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pair-strings interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no decisions are interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the cache since creation (or last [`clear`]).
    ///
    /// [`clear`]: UpCache::clear
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the classifier/matcher/stay rule.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all interned decisions and reset the statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.fingerprint = None;
        self.hits = 0;
        self.misses = 0;
    }

    /// Reset the cache if `machine` differs from the one the interned
    /// decisions were computed for. Called once per run.
    pub(crate) fn ensure_machine(&mut self, machine: &TwoWayUnranked) {
        let fp = machine.cache_fingerprint();
        if self.fingerprint != Some(fp) {
            self.clear();
            self.fingerprint = Some(fp);
        }
    }

    /// The memoized up/stay decision for `pairs`.
    pub(crate) fn decide<O: Observer>(
        &mut self,
        machine: &TwoWayUnranked,
        pairs: &[(StateId, Symbol)],
        obs: &mut O,
    ) -> Result<UpEntry> {
        let key: Box<[u32]> = pairs
            .iter()
            .map(|&(q, l)| pair_symbol(q, l, machine.alphabet_len()).index() as u32)
            .collect();
        if let Some(entry) = self.map.get(&key) {
            self.hits += 1;
            obs.count(Counter::CacheHits, 1);
            return Ok(entry.clone());
        }
        self.misses += 1;
        obs.count(Counter::CacheMisses, 1);
        let entry = if let Some(q2) = machine.classify_up(pairs) {
            UpEntry::Up(q2)
        } else if machine.matches_stay(pairs) {
            let rule = &machine.stay().expect("matched U_stay").rule;
            let out = rule.apply(pairs, machine.alphabet_len())?;
            if out.len() != pairs.len() {
                return Err(Error::ill_formed(
                    "S2DTAu",
                    "stay rule must emit one state per child",
                ));
            }
            UpEntry::Stay(out)
        } else {
            UpEntry::Stuck
        };
        self.map.insert(key, entry.clone());
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::super::query::{example_5_14, example_5_9};
    use super::*;
    use qa_base::Alphabet;
    use qa_obs::NoopObserver;

    #[test]
    fn cached_queries_match_uncached_and_hit() {
        let a = Alphabet::from_names(["0", "1"]);
        let qa = example_5_14(&a);
        let mut cache = UpCache::new();
        let labels = [a.symbol("0"), a.symbol("1")];
        let mut rng = qa_base::rng::StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let t = qa_trees::generate::random(&mut rng, &labels, 12, None);
            let plain = qa.query(&t).unwrap();
            let cached = qa.query_cached(&t, &mut cache, &mut NoopObserver).unwrap();
            assert_eq!(plain, cached, "{}", t.render(&a));
        }
        assert!(cache.hits() > 0, "repeated pair-strings must hit");
        assert!(cache.misses() > 0);
    }

    #[test]
    fn switching_machines_resets_the_cache() {
        let leaves = Alphabet::from_names(["0", "1"]);
        let circuits = Alphabet::from_names(["AND", "OR", "0", "1"]);
        let qa1 = example_5_14(&leaves);
        let qa2 = example_5_9(&circuits);
        let mut cache = UpCache::new();
        let mut a = leaves.clone();
        let t1 = qa_trees::sexpr::from_sexpr("(0 1 1 0)", &mut a).unwrap();
        qa1.query_cached(&t1, &mut cache, &mut NoopObserver)
            .unwrap();
        assert!(!cache.is_empty());
        let mut c = circuits.clone();
        let t2 = qa_trees::sexpr::from_sexpr("(AND 1 (OR 0 1))", &mut c).unwrap();
        let got = qa2
            .query_cached(&t2, &mut cache, &mut NoopObserver)
            .unwrap();
        assert_eq!(got, qa2.query(&t2).unwrap());
        assert_eq!(cache.hits(), 0, "fingerprint change cleared statistics");
    }
}
