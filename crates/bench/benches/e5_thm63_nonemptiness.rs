//! E5 (Theorem 6.3): query non-emptiness via the behavior-summary
//! fixpoint. Structured (MSO-ish) automata stay fast; the reachable
//! summary count — the EXPTIME driver — grows with the state count on
//! adversarial (tiling-derived) machines.

use qa_base::Symbol;
use qa_bench::Harness;
use qa_core::ranked::RankedQa;
use qa_strings::StateId;

fn select_all(mut qa: RankedQa) -> RankedQa {
    for s in 0..qa.machine().num_states() {
        for t in 0..qa.machine().alphabet_len() {
            qa.set_selecting(StateId::from_index(s), Symbol::from_index(t), true);
        }
    }
    qa
}

fn main() {
    let mut h = Harness::new("e5_thm63_nonemptiness");

    // structured machine: Example 4.4 (10 states)
    let circuits = qa_bench::circuit_alphabet();
    let ex44 = qa_core::ranked::query::example_4_4(&circuits);
    h.bench("example_4_4", || {
        qa_decision::ranked_decisions::non_emptiness(&ex44)
            .unwrap()
            .is_some()
    });

    // adversarial family: tiling reductions of growing width — state count
    // grows as |T|^width, and the fixpoint pays for it.
    for width in [1usize, 2, 3] {
        let inst = qa_decision::tiling::TilingInstance {
            num_tiles: 2,
            horizontal: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            vertical: vec![(0, 1), (1, 1)],
            bottom: vec![0; width],
            top: vec![1; width],
        };
        let machine = qa_decision::tiling::to_tree_automaton(&inst).unwrap();
        let states = machine.num_states();
        let qa = select_all(RankedQa::new(machine));
        h.bench(&format!("tiling_w{width}_q{states}"), || {
            qa_decision::ranked_decisions::non_emptiness(&qa)
                .unwrap()
                .is_some()
        });
    }

    // containment runs the joint fixpoint: measure on the circuit pair
    let mut and_only = qa_core::ranked::query::example_4_4(&circuits);
    for s in 0..and_only.machine().num_states() {
        and_only.set_selecting(StateId::from_index(s), circuits.symbol("OR"), false);
    }
    h.bench("containment_4_4", || {
        qa_decision::ranked_decisions::containment(&and_only, &ex44)
            .unwrap()
            .is_none()
    });
}
