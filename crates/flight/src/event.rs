//! [`JobEvent`]: one wide, structured event per (query, document) job.
//!
//! The metrics registry answers "how much work did the fleet do"; the
//! flight ring answers "what happened right before this process died".
//! Neither answers the serving question — *which query on which document
//! was slow, and why*. The wide event does: every job emits exactly one
//! JSON line into `events.jsonl` carrying its identity (run/trace/span
//! ids), its placement (worker, shard), its document's shape, its exact
//! work counters, and its outcome.
//!
//! ## The determinism discipline
//!
//! Following the `metrics.prom` discipline, every field is deterministic —
//! byte-identical across reruns, `--jobs N` and `--mesh N` — **except** the
//! trailing *volatile* fields ([`VOLATILE_FIELDS`]): `worker` and `shard`
//! (placement facts that legitimately differ across fleet topologies) and
//! `start_ns` / `wall_ns` (wall-clock). Volatile fields are always written
//! last, so the deterministic prefix of each line is stable, and
//! [`identity_projection`] strips them for the byte-identity gates.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use qa_obs::json::{self, Value};

/// The trailing per-line fields excluded from the determinism contract:
/// placement (`worker`, `shard`) and wall-clock (`start_ns`, `wall_ns`).
pub const VOLATILE_FIELDS: [&str; 4] = ["worker", "shard", "start_ns", "wall_ns"];

/// One job's wide event — the unit of `events.jsonl`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobEvent {
    /// Fleet run id (shared by every process of one logical run).
    pub run: String,
    /// Trace id, 16 hex digits ([`qa_obs::TraceContext::mint`] on
    /// `(run, job)`).
    pub trace: String,
    /// Span id of this evaluation, 16 hex digits.
    pub span: String,
    /// Global job index in the (query × doc) grid.
    pub job: usize,
    /// Workload (query) name, e.g. `example-5-9`.
    pub query: String,
    /// Query index into the roster.
    pub query_index: usize,
    /// Document index within the query's corpus slice.
    pub doc_index: usize,
    /// Document size: word length or tree node count.
    pub doc_nodes: usize,
    /// Document height: 0 for words, tree height otherwise.
    pub doc_depth: usize,
    /// Engine steps the job consumed.
    pub steps: u64,
    /// Two-way head reversals.
    pub reversals: u64,
    /// Behavior-cache hits.
    pub cache_hits: u64,
    /// Behavior-cache misses.
    pub cache_misses: u64,
    /// Watchdog budget trips (0 on a clean run).
    pub budget_trips: u64,
    /// Positions/nodes the query selected.
    pub selected: usize,
    /// Whether this run was admitted into the full-trace sample.
    pub sampled: bool,
    /// `"ok"`, or the run error rendering (e.g. a budget abort).
    pub outcome: String,
    /// Worker id that executed the job (volatile; `local` in-process).
    pub worker: String,
    /// Shard spec `i/n` (volatile; `0/1` in-process).
    pub shard: String,
    /// Job start, nanoseconds since this worker's fleet started (volatile).
    pub start_ns: u64,
    /// Job latency in nanoseconds (volatile).
    pub wall_ns: u64,
}

impl JobEvent {
    /// Serialize the full event as one JSON object (one JSONL line, no
    /// trailing newline). Deterministic fields first, volatile fields last.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            self.write_identity(w);
            w.field_str("worker", &self.worker);
            w.field_str("shard", &self.shard);
            w.field_u64("start_ns", self.start_ns);
            w.field_u64("wall_ns", self.wall_ns);
        })
    }

    /// Serialize only the deterministic fields — the identity the
    /// byte-identity gates compare across `--jobs N` and `--mesh N`.
    pub fn identity_json(&self) -> String {
        json::object(|w| self.write_identity(w))
    }

    fn write_identity(&self, w: &mut json::ObjectWriter) {
        w.field_u64("v", 1);
        w.field_str("run", &self.run);
        w.field_str("trace", &self.trace);
        w.field_str("span", &self.span);
        w.field_u64("job", self.job as u64);
        w.field_str("query", &self.query);
        w.field_u64("query_index", self.query_index as u64);
        w.field_u64("doc_index", self.doc_index as u64);
        w.field_u64("doc_nodes", self.doc_nodes as u64);
        w.field_u64("doc_depth", self.doc_depth as u64);
        w.field_u64("steps", self.steps);
        w.field_u64("reversals", self.reversals);
        w.field_u64("cache_hits", self.cache_hits);
        w.field_u64("cache_misses", self.cache_misses);
        w.field_u64("budget_trips", self.budget_trips);
        w.field_u64("selected", self.selected as u64);
        w.field_bool("sampled", self.sampled);
        w.field_str("outcome", &self.outcome);
    }

    /// Parse one event back from its parsed JSON document — the inverse of
    /// [`JobEvent::to_json`]. Volatile fields default (`local`, `0/1`, 0)
    /// when absent, so identity projections parse too.
    pub fn from_json(v: &Value) -> Result<JobEvent, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event missing string field `{key}`"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event missing integer field `{key}`"))
        };
        let version = u64_field("v")?;
        if version != 1 {
            return Err(format!("unsupported event version {version}"));
        }
        Ok(JobEvent {
            run: str_field("run")?,
            trace: str_field("trace")?,
            span: str_field("span")?,
            job: u64_field("job")? as usize,
            query: str_field("query")?,
            query_index: u64_field("query_index")? as usize,
            doc_index: u64_field("doc_index")? as usize,
            doc_nodes: u64_field("doc_nodes")? as usize,
            doc_depth: u64_field("doc_depth")? as usize,
            steps: u64_field("steps")?,
            reversals: u64_field("reversals")?,
            cache_hits: u64_field("cache_hits")?,
            cache_misses: u64_field("cache_misses")?,
            budget_trips: u64_field("budget_trips")?,
            selected: u64_field("selected")? as usize,
            sampled: match v.get("sampled") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("event missing boolean field `sampled`".to_string()),
            },
            outcome: str_field("outcome")?,
            worker: opt_str(v, "worker", "local"),
            shard: opt_str(v, "shard", "0/1"),
            start_ns: v.get("start_ns").and_then(Value::as_u64).unwrap_or(0),
            wall_ns: v.get("wall_ns").and_then(Value::as_u64).unwrap_or(0),
        })
    }

    /// Parse one `events.jsonl` line.
    pub fn from_jsonl_line(line: &str) -> Result<JobEvent, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        JobEvent::from_json(&v)
    }
}

fn opt_str(v: &Value, key: &str, default: &str) -> String {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or(default)
        .to_string()
}

/// Parse a whole `events.jsonl` document (one event per non-empty line).
pub fn parse_events(jsonl: &str) -> Result<Vec<JobEvent>, String> {
    jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| JobEvent::from_jsonl_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Project an `events.jsonl` document onto its deterministic fields: parse
/// every line, drop the volatile tail, and re-render. Two fleets over the
/// same corpus must agree on this projection byte for byte, whatever their
/// `--jobs` or `--mesh` topology.
pub fn identity_projection(jsonl: &str) -> Result<String, String> {
    let mut out = String::new();
    for ev in parse_events(jsonl)? {
        out.push_str(&ev.identity_json());
        out.push('\n');
    }
    Ok(out)
}

/// A bounded, shareable ring of recent [`JobEvent`]s — the store behind the
/// pulse `/events` endpoint.
///
/// Cloning shares the ring (`Arc`); the fleet pushes an event as each job
/// finishes (completion order — a live tail, not the deterministic file
/// order) and the serve thread reads the tail concurrently.
#[derive(Clone, Debug)]
pub struct SharedEvents {
    ring: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    events: VecDeque<JobEvent>,
    cap: usize,
    dropped: u64,
}

impl SharedEvents {
    /// Ring retaining at most `cap` events (`cap ≥ 1`).
    pub fn with_capacity(cap: usize) -> SharedEvents {
        assert!(cap >= 1, "event ring needs capacity >= 1");
        SharedEvents {
            ring: Arc::new(Mutex::new(Inner {
                events: VecDeque::with_capacity(cap.min(4096)),
                cap,
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.ring.lock().expect("event ring lock poisoned")
    }

    /// Append one finished job's event, evicting the oldest past capacity.
    pub fn push(&self, event: JobEvent) {
        let mut inner = self.lock();
        if inner.events.len() == inner.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Render the most recent `n` events as JSONL, oldest first — the
    /// `/events?n=K` body. `n` beyond the retained count means everything.
    pub fn tail_jsonl(&self, n: usize) -> String {
        let inner = self.lock();
        let skip = inner.events.len().saturating_sub(n);
        let mut out = String::new();
        for ev in inner.events.iter().skip(skip) {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::rng::{Rng, StdRng};
    use qa_obs::TraceContext;

    fn sample_event(job: usize) -> JobEvent {
        let ctx = TraceContext::mint("fleet-s7-q4x4-z48", job);
        JobEvent {
            run: "fleet-s7-q4x4-z48".to_string(),
            trace: ctx.trace_hex(),
            span: ctx.span_hex(),
            job,
            query: "example-5-9".to_string(),
            query_index: 2,
            doc_index: job % 4,
            doc_nodes: 48,
            doc_depth: 6,
            steps: 1234,
            reversals: 7,
            cache_hits: 3,
            cache_misses: 9,
            budget_trips: 0,
            selected: 11,
            sampled: job.is_multiple_of(2),
            outcome: "ok".to_string(),
            worker: "w1".to_string(),
            shard: "1/2".to_string(),
            start_ns: 55,
            wall_ns: 777,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let ev = sample_event(3);
        let back = JobEvent::from_jsonl_line(&ev.to_json()).expect("parses");
        assert_eq!(back, ev);
    }

    #[test]
    fn volatile_fields_are_the_trailing_fields() {
        let line = sample_event(0).to_json();
        let parsed = qa_obs::json::parse(&line).expect("valid JSON");
        let fields = parsed.as_obj().expect("object");
        let tail: Vec<&str> = fields
            .iter()
            .rev()
            .take(VOLATILE_FIELDS.len())
            .map(|(k, _)| k.as_str())
            .collect();
        let mut expected: Vec<&str> = VOLATILE_FIELDS.to_vec();
        expected.reverse();
        assert_eq!(tail, expected, "volatile fields must close every line");
    }

    #[test]
    fn identity_projection_strips_exactly_the_volatile_fields() {
        let mut a = sample_event(5);
        let mut b = sample_event(5);
        a.worker = "w0".to_string();
        b.worker = "w3r1".to_string();
        a.shard = "0/4".to_string();
        b.shard = "3/4".to_string();
        a.wall_ns = 1;
        b.wall_ns = 999_999;
        b.start_ns = 123_456;
        let ja = format!("{}\n", a.to_json());
        let jb = format!("{}\n", b.to_json());
        assert_ne!(ja, jb);
        assert_eq!(
            identity_projection(&ja).unwrap(),
            identity_projection(&jb).unwrap(),
            "placement and wall-clock must not survive the projection"
        );
        // The projection itself still parses (volatile fields default).
        let back = parse_events(&identity_projection(&ja).unwrap()).unwrap();
        assert_eq!(back[0].steps, a.steps);
        assert_eq!(back[0].worker, "local");
    }

    /// Property test: random events survive JSONL round trips unchanged.
    #[test]
    fn random_events_round_trip_through_jsonl() {
        let mut rng = StdRng::seed_from_u64(0x1e45);
        for case in 0..200 {
            let job = rng.gen_range(0..10_000);
            let ctx = TraceContext::mint("prop-run", job);
            let queries = ["example-3-4", "example-4-4", "weird \"query\"\\name"];
            let outcomes = ["ok", "aborted: steps = 10 exceeded budget 5", "π-path"];
            let ev = JobEvent {
                run: format!("prop-run-{}", rng.gen_range(0..3)),
                trace: ctx.trace_hex(),
                span: ctx.span_hex(),
                job,
                query: queries[rng.gen_range(0..queries.len())].to_string(),
                query_index: rng.gen_range(0..8),
                doc_index: rng.gen_range(0..100),
                doc_nodes: rng.gen_range(0..1_000_000),
                doc_depth: rng.gen_range(0..64),
                steps: rng.next_u64() >> 32,
                reversals: rng.gen_range(0..100_000) as u64,
                cache_hits: rng.gen_range(0..100_000) as u64,
                cache_misses: rng.gen_range(0..100_000) as u64,
                budget_trips: rng.gen_range(0..3) as u64,
                selected: rng.gen_range(0..10_000),
                sampled: rng.gen_bool(0.5),
                outcome: outcomes[rng.gen_range(0..outcomes.len())].to_string(),
                worker: format!("w{}", rng.gen_range(0..9)),
                shard: format!("{}/{}", rng.gen_range(0..4), 4),
                start_ns: rng.next_u64() >> 32,
                wall_ns: rng.next_u64() >> 32,
            };
            let back = JobEvent::from_jsonl_line(&ev.to_json())
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(back, ev, "case {case}");
        }
    }

    #[test]
    fn parse_events_reports_the_offending_line() {
        let good = sample_event(1).to_json();
        let err = parse_events(&format!("{good}\nnot json\n")).expect_err("bad line");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let ring = SharedEvents::with_capacity(3);
        for job in 0..5 {
            ring.push(sample_event(job));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let tail = ring.tail_jsonl(2);
        let events = parse_events(&tail).unwrap();
        assert_eq!(
            events.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![3, 4],
            "tail is the most recent events, oldest first"
        );
        // n beyond the retained count returns everything retained.
        assert_eq!(parse_events(&ring.tail_jsonl(100)).unwrap().len(), 3);
    }
}
