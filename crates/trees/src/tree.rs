//! Arena-based ordered labeled trees.

use qa_base::Symbol;

qa_base::define_id!(pub NodeId, "n");

#[derive(Clone, Debug, PartialEq, Eq)]
struct Node {
    label: Symbol,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An ordered, Σ-labeled tree in a flat arena.
///
/// The root is always node `0`. Children are ordered; `vi` in the paper's
/// notation is `tree.child(v, i - 1)`. Construction is either incremental
/// ([`Tree::leaf`] + [`Tree::add_child`]) or compositional
/// ([`Tree::node`], grafting subtree arenas — the paper's `σ(t₁, …, tₙ)`).
///
/// ```
/// use qa_base::Alphabet;
/// use qa_trees::Tree;
/// let mut sigma = Alphabet::new();
/// let (f, a, b) = (sigma.intern("f"), sigma.intern("a"), sigma.intern("b"));
/// // f(a, b)
/// let t = Tree::node(f, vec![Tree::leaf(a), Tree::leaf(b)]);
/// assert_eq!(t.num_nodes(), 3);
/// assert_eq!(t.arity(t.root()), 2);
/// assert_eq!(t.label(t.child(t.root(), 1)), b);
/// ```
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// Structural equality: same shape and labels, regardless of arena layout.
impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        let mut stack = vec![(self.root(), other.root())];
        while let Some((a, b)) = stack.pop() {
            if self.label(a) != other.label(b) || self.arity(a) != other.arity(b) {
                return false;
            }
            stack.extend(
                self.children(a)
                    .iter()
                    .copied()
                    .zip(other.children(b).iter().copied()),
            );
        }
        true
    }
}

impl Eq for Tree {}

impl Tree {
    /// A single-node tree — the paper's `t(σ)`.
    pub fn leaf(label: Symbol) -> Tree {
        Tree {
            nodes: vec![Node {
                label,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// `σ(t₁, …, tₙ)`: a fresh root labeled `label` above the given
    /// subtrees (their arenas are merged iteratively).
    pub fn node(label: Symbol, subtrees: Vec<Tree>) -> Tree {
        let mut t = Tree::leaf(label);
        for sub in subtrees {
            t.graft(t.root(), &sub);
        }
        t
    }

    /// The root node (always id 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::from_index(0)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Symbol {
        self.nodes[v.index()].label
    }

    /// Relabel `v`.
    pub fn set_label(&mut self, v: NodeId, label: Symbol) {
        self.nodes[v.index()].label = label;
    }

    /// The parent of `v` (`None` for the root).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.nodes[v.index()].parent
    }

    /// The ordered children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[v.index()].children
    }

    /// The `i`-th (0-based) child of `v`.
    #[inline]
    pub fn child(&self, v: NodeId, i: usize) -> NodeId {
        self.nodes[v.index()].children[i]
    }

    /// Number of children of `v` — the paper's `arity(v)`.
    #[inline]
    pub fn arity(&self, v: NodeId) -> usize {
        self.nodes[v.index()].children.len()
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.nodes[v.index()].children.is_empty()
    }

    /// The position of `v` among its siblings (0-based); 0 for the root.
    pub fn child_index(&self, v: NodeId) -> usize {
        match self.parent(v) {
            None => 0,
            Some(p) => self
                .children(p)
                .iter()
                .position(|&c| c == v)
                .expect("child lists are consistent"),
        }
    }

    /// Append a fresh leaf child under `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, label: Symbol) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            label,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Graft a copy of `sub` as the new last child of `parent`; returns the
    /// id of the copied root. Iterative — safe for deep subtrees.
    pub fn graft(&mut self, parent: NodeId, sub: &Tree) -> NodeId {
        let offset = self.nodes.len();
        let shift = |v: NodeId| NodeId::from_index(v.index() + offset);
        for (i, n) in sub.nodes.iter().enumerate() {
            self.nodes.push(Node {
                label: n.label,
                parent: Some(n.parent.map(&shift).unwrap_or(parent)),
                children: n.children.iter().copied().map(&shift).collect(),
            });
            if i == 0 {
                let new_root = NodeId::from_index(offset);
                self.nodes[parent.index()].children.push(new_root);
            }
        }
        NodeId::from_index(offset)
    }

    /// All node ids (arena order, root first).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All leaves, in arena order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&v| self.is_leaf(v))
    }

    /// The depth of `v` (root has depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the whole tree (a single node has height 0). Iterative.
    pub fn height(&self) -> usize {
        let mut h = vec![0usize; self.nodes.len()];
        for v in self.postorder() {
            h[v.index()] = self
                .children(v)
                .iter()
                .map(|c| h[c.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        h[self.root().index()]
    }

    /// Maximum arity over all nodes (0 for a single leaf) — the paper's
    /// *rank* of the tree.
    pub fn rank(&self) -> usize {
        self.nodes().map(|v| self.arity(v)).max().unwrap_or(0)
    }

    /// Whether every node has arity `<= m`.
    pub fn is_ranked(&self, m: usize) -> bool {
        self.rank() <= m
    }

    /// Preorder traversal (root, then subtrees left to right). Iterative.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Postorder traversal (subtrees left to right, then root). Iterative.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = self.preorder_mirrored();
        out.reverse();
        out
    }

    /// Preorder with children visited right to left (helper for postorder).
    fn preorder_mirrored(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.children(v) {
                stack.push(c);
            }
        }
        out
    }

    /// Node ids grouped by depth (level 0 = root) — the *cuts by level* the
    /// Figure 5/6 algorithms proceed along.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels: Vec<Vec<NodeId>> = Vec::new();
        let mut current = vec![self.root()];
        while !current.is_empty() {
            let mut next = Vec::new();
            for &v in &current {
                next.extend_from_slice(self.children(v));
            }
            levels.push(std::mem::take(&mut current));
            current = next;
        }
        levels
    }

    /// The number of nodes in the subtree rooted at `v`. Iterative.
    pub fn subtree_size(&self, v: NodeId) -> usize {
        let mut n = 0;
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            n += 1;
            stack.extend_from_slice(self.children(u));
        }
        n
    }

    /// A fresh tree that is a copy of the subtree rooted at `v` — the
    /// paper's `t_v`.
    pub fn subtree(&self, v: NodeId) -> Tree {
        let mut map = std::collections::HashMap::new();
        let mut out = Tree::leaf(self.label(v));
        map.insert(v, out.root());
        // preorder so parents are mapped before children
        let mut stack: Vec<NodeId> = self.children(v).iter().rev().copied().collect();
        while let Some(u) = stack.pop() {
            let p = self.parent(u).expect("non-root in subtree");
            let np = map[&p];
            let nu = out.add_child(np, self.label(u));
            map.insert(u, nu);
            for &c in self.children(u).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The *envelope* `t̄_v`: the tree with the subtrees rooted at `v`'s
    /// children removed (`v` itself remains, as in the paper). Returns the
    /// envelope tree and the id of `v`'s copy in it.
    pub fn envelope(&self, v: NodeId) -> (Tree, NodeId) {
        let mut keep = vec![false; self.nodes.len()];
        // keep everything except strict descendants of v
        let mut stack = vec![self.root()];
        while let Some(u) = stack.pop() {
            keep[u.index()] = true;
            if u != v {
                stack.extend_from_slice(self.children(u));
            }
        }
        let mut map = std::collections::HashMap::new();
        let mut out = Tree::leaf(self.label(self.root()));
        map.insert(self.root(), out.root());
        // preorder over kept nodes
        let mut stack: Vec<NodeId> = if v == self.root() {
            Vec::new()
        } else {
            self.children(self.root()).iter().rev().copied().collect()
        };
        while let Some(u) = stack.pop() {
            if !keep[u.index()] {
                continue;
            }
            let p = self.parent(u).expect("non-root");
            let np = map[&p];
            let nu = out.add_child(np, self.label(u));
            map.insert(u, nu);
            if u != v {
                for &c in self.children(u).iter().rev() {
                    stack.push(c);
                }
            }
        }
        (out, map[&v])
    }

    /// Render as an s-expression with an alphabet for names.
    pub fn render(&self, alphabet: &qa_base::Alphabet) -> String {
        crate::sexpr::to_sexpr(self, alphabet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn sample() -> (Tree, Alphabet) {
        let mut a = Alphabet::new();
        let (f, g, x, y) = (a.intern("f"), a.intern("g"), a.intern("x"), a.intern("y"));
        // f(g(x, y), y)
        let t = Tree::node(
            f,
            vec![
                Tree::node(g, vec![Tree::leaf(x), Tree::leaf(y)]),
                Tree::leaf(y),
            ],
        );
        (t, a)
    }

    #[test]
    fn structure_queries() {
        let (t, a) = sample();
        let r = t.root();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.arity(r), 2);
        assert_eq!(a.name(t.label(r)), "f");
        let g = t.child(r, 0);
        assert_eq!(a.name(t.label(g)), "g");
        assert_eq!(t.arity(g), 2);
        assert!(t.is_leaf(t.child(g, 1)));
        assert_eq!(t.parent(g), Some(r));
        assert_eq!(t.parent(r), None);
        assert_eq!(t.child_index(t.child(g, 1)), 1);
        assert_eq!(t.depth(t.child(g, 0)), 2);
        assert_eq!(t.height(), 2);
        assert_eq!(t.rank(), 2);
        assert!(t.is_ranked(2));
        assert!(!t.is_ranked(1));
        assert_eq!(t.subtree_size(g), 3);
        assert_eq!(t.leaves().count(), 3);
    }

    #[test]
    fn traversal_orders() {
        let (t, a) = sample();
        let pre: Vec<&str> = t.preorder().iter().map(|&v| a.name(t.label(v))).collect();
        assert_eq!(pre, vec!["f", "g", "x", "y", "y"]);
        let post: Vec<&str> = t.postorder().iter().map(|&v| a.name(t.label(v))).collect();
        assert_eq!(post, vec!["x", "y", "g", "y", "f"]);
    }

    #[test]
    fn levels_group_by_depth() {
        let (t, _) = sample();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![t.root()]);
        assert_eq!(levels[1].len(), 2);
        assert_eq!(levels[2].len(), 2);
    }

    #[test]
    fn subtree_extraction() {
        let (t, a) = sample();
        let g = t.child(t.root(), 0);
        let sub = t.subtree(g);
        assert_eq!(sub.render(&a), "(g x y)");
    }

    #[test]
    fn envelope_removes_descendants_keeps_v() {
        let (t, a) = sample();
        let g = t.child(t.root(), 0);
        let (env, gv) = t.envelope(g);
        assert_eq!(env.render(&a), "(f g y)");
        assert_eq!(a.name(env.label(gv)), "g");
        assert!(env.is_leaf(gv));
        // envelope of the root keeps only the root's other structure
        let (env, rv) = t.envelope(t.root());
        assert_eq!(env.num_nodes(), 1);
        assert_eq!(rv, env.root());
    }

    #[test]
    fn graft_preserves_child_order() {
        let mut a = Alphabet::new();
        let (f, x, y) = (a.intern("f"), a.intern("x"), a.intern("y"));
        let mut t = Tree::leaf(f);
        t.graft(t.root(), &Tree::leaf(x));
        t.graft(t.root(), &Tree::leaf(y));
        assert_eq!(t.render(&a), "(f x y)");
    }

    #[test]
    fn deep_tree_does_not_overflow() {
        let mut a = Alphabet::new();
        let c = a.intern("c");
        let mut t = Tree::leaf(c);
        let mut cur = t.root();
        for _ in 0..200_000 {
            cur = t.add_child(cur, c);
        }
        assert_eq!(t.height(), 200_000);
        assert_eq!(t.postorder().len(), 200_001);
        assert_eq!(t.depth(cur), 200_000);
    }
}
