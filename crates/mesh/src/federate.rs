//! Federation: folding per-worker telemetry into one coherent surface.
//!
//! The mesh's central invariant is that **federation is shard-invariant**:
//! because [`Metrics::merge`] is commutative and associative, merging the
//! parsed `/metrics` scrapes of N workers yields the same registry — and
//! therefore the same rendered exposition, byte for byte — no matter how
//! the job grid was dealt out. [`federate_metrics`] is that fold;
//! [`federate_profile`] and [`federate_flight`] are the profile/flight
//! counterparts, which *keep* worker identity (a profile frame or flight
//! event is only useful if you know which process it came from) and so are
//! deterministic per shard count rather than across shard counts.

use qa_obs::Metrics;
use qa_pulse::parse_prometheus;

/// Merge worker `/metrics` scrapes into one registry.
///
/// Each scrape is parsed ([`parse_prometheus`]) and mapped back onto the
/// `<prefix>_*` counter/histogram families
/// ([`Scrape::to_metrics`](qa_pulse::Scrape::to_metrics)); families
/// outside the prefix — `qa_build_info`, `qa_heap_*`, per-worker info
/// gauges — stay out, which is what keeps the federated render
/// independent of worker count. Returns the merged registry or the first
/// scrape's parse error (tagged with its index).
pub fn federate_metrics<'a>(
    scrapes: impl IntoIterator<Item = &'a str>,
    prefix: &str,
) -> Result<Metrics, String> {
    let federated = Metrics::new();
    for (i, text) in scrapes.into_iter().enumerate() {
        let registry = parse_prometheus(text)
            .and_then(|s| s.to_metrics(prefix))
            .map_err(|e| format!("worker scrape {i}: {e}"))?;
        federated.merge(&registry);
    }
    Ok(federated)
}

/// Merge collapsed-stack profiles, attributing every frame to its worker.
///
/// Each worker's `profile.folded` lines (`stack;frames count`) are
/// prefixed with `<worker_id>;`, so the federated flamegraph shows one
/// subtree per worker and every sample stays attributable. Lines are
/// sorted for deterministic output.
pub fn federate_profile(workers: &[(String, String)]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (worker_id, folded) in workers {
        for line in folded.lines().filter(|l| !l.is_empty()) {
            lines.push(format!("{worker_id};{line}"));
        }
    }
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Combine worker flight-recorder JSON dumps into one document:
/// `{"run_id":"…","workers":[…]}`, workers in the given order. Each
/// worker dump already carries its own `run_id`/`worker` correlation ids
/// (see `FlightRecorder::set_correlation` in `qa-flight`), so every
/// retained event in the federated document is attributable.
pub fn federate_flight(run_id: &str, worker_dumps: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\"run_id\":\"");
    for c in run_id.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out.push_str("\",\"workers\":[");
    for (i, dump) in worker_dumps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(dump);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::{Counter, Observer, Series};
    use qa_probe::export::prometheus_text;

    fn worker(steps: u64, trace_lens: &[u64]) -> Metrics {
        let m = Metrics::new();
        let mut o = m.observer();
        o.count(Counter::Steps, steps);
        for &v in trace_lens {
            o.record(Series::TraceLength, v);
        }
        m
    }

    #[test]
    fn metrics_federation_is_shard_invariant() {
        // The same three "jobs" dealt over 1 vs 3 workers.
        let all = worker(600, &[1, 20, 300]);
        let shards = [worker(100, &[1]), worker(200, &[20]), worker(300, &[300])];

        let one = federate_metrics([prometheus_text(&all, "qa_fleet").as_str()], "qa_fleet")
            .expect("single scrape");
        let texts: Vec<String> = shards
            .iter()
            .map(|m| prometheus_text(m, "qa_fleet"))
            .collect();
        let three = federate_metrics(texts.iter().map(|s| s.as_str()), "qa_fleet").expect("merge");
        assert_eq!(
            prometheus_text(&one, "qa_fleet"),
            prometheus_text(&three, "qa_fleet"),
            "federated exposition must not depend on sharding"
        );
    }

    #[test]
    fn federation_surfaces_parse_errors_with_the_worker_index() {
        let good = prometheus_text(&worker(1, &[]), "qa_fleet");
        let err = federate_metrics([good.as_str(), "garbage without value"], "qa_fleet")
            .expect_err("second scrape is garbage");
        assert!(err.starts_with("worker scrape 1:"), "{err}");
    }

    #[test]
    fn profile_federation_prefixes_frames_with_the_worker() {
        let merged = federate_profile(&[
            ("w1".to_string(), "run;scan 30\nrun 5\n".to_string()),
            ("w0".to_string(), "run;scan 10\n".to_string()),
        ]);
        assert_eq!(merged, "w0;run;scan 10\nw1;run 5\nw1;run;scan 30\n");
    }

    #[test]
    fn flight_federation_wraps_worker_dumps_under_the_run_id() {
        let doc = federate_flight(
            "mesh-s7",
            &[
                "{\"worker\":\"w0\"}".to_string(),
                "{\"worker\":\"w1\"}".to_string(),
            ],
        );
        assert_eq!(
            doc,
            "{\"run_id\":\"mesh-s7\",\"workers\":[{\"worker\":\"w0\"},{\"worker\":\"w1\"}]}"
        );
        let opens = doc.matches(['{', '[']).count();
        assert_eq!(opens, doc.matches(['}', ']']).count());
    }
}
