//! Lemma 5.2: non-emptiness of unranked bottom-up tree automata is in
//! PTIME.
//!
//! The algorithm is the paper's: compute the reachable-state fixpoint
//! `R₁ ⊆ R₂ ⊆ …` where `q ∈ Rₙ₊₁` iff some transition language
//! `δ(q, a)` intersects `Rₙ*`; the language is non-empty iff the fixpoint
//! meets `F`. Each intersection test is NFA emptiness restricted to a
//! symbol subset — polynomial.

use qa_base::Symbol;
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;
use qa_trees::Tree;

use super::Nbtau;

/// The set of reachable states of `n` (the paper's `R`), as a boolean mask.
pub fn reachable_states(n: &Nbtau) -> Vec<bool> {
    reachable_states_with(n, &mut NoopObserver)
}

/// [`reachable_states`] with an [`Observer`]: each outer fixpoint round is a
/// [`Counter::FixpointIterations`] and each restricted NFA emptiness test a
/// [`Counter::TableLookups`]. With [`NoopObserver`] this monomorphizes to
/// exactly `reachable_states`.
pub fn reachable_states_with<O: Observer>(n: &Nbtau, obs: &mut O) -> Vec<bool> {
    let mut reached = vec![false; n.num_states()];
    loop {
        obs.count(Counter::FixpointIterations, 1);
        let mut changed = false;
        for (q, _a, nfa) in n.languages() {
            if reached[q.index()] {
                continue;
            }
            obs.count(Counter::TableLookups, 1);
            obs.state_visit(Machine::Decision, q.index() as u32, _a.index() as u32);
            if !nfa.is_empty_over(Some(&reached)) {
                reached[q.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    reached
}

/// Whether `L(n)` is non-empty (Lemma 5.2).
pub fn is_nonempty(n: &Nbtau) -> bool {
    is_nonempty_with(n, &mut NoopObserver)
}

/// [`is_nonempty`] with an [`Observer`] (see [`reachable_states_with`]).
pub fn is_nonempty_with<O: Observer>(n: &Nbtau, obs: &mut O) -> bool {
    let reached = reachable_states_with(n, obs);
    (0..n.num_states())
        .map(StateId::from_index)
        .any(|q| reached[q.index()] && n.is_final(q))
}

/// A witness tree, if the language is non-empty.
///
/// Re-runs the fixpoint, recording for each newly reached state a witness
/// tree assembled from a shortest transition word over already-reached
/// states.
pub fn witness(n: &Nbtau) -> Option<Tree> {
    witness_with(n, &mut NoopObserver)
}

/// [`witness`] with an [`Observer`]: fixpoint rounds and emptiness tests are
/// counted as in [`reachable_states_with`], and the size of the returned
/// witness tree (when one exists) is recorded under [`Series::WitnessSize`].
pub fn witness_with<O: Observer>(n: &Nbtau, obs: &mut O) -> Option<Tree> {
    let mut trees: Vec<Option<Tree>> = vec![None; n.num_states()];
    let mut reached = vec![false; n.num_states()];
    loop {
        obs.count(Counter::FixpointIterations, 1);
        let mut changed = false;
        for (q, a, nfa) in n.languages() {
            if reached[q.index()] {
                continue;
            }
            obs.count(Counter::TableLookups, 1);
            obs.state_visit(Machine::Decision, q.index() as u32, a.index() as u32);
            if nfa.is_empty_over(Some(&reached)) {
                continue;
            }
            // shortest word over reached states
            let word = restricted_witness(nfa, &reached).expect("non-empty over this restriction");
            let kids: Vec<Tree> = word
                .iter()
                .map(|s| trees[s.index()].clone().expect("reached"))
                .collect();
            trees[q.index()] = Some(Tree::node(a, kids));
            reached[q.index()] = true;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let best = (0..n.num_states())
        .map(StateId::from_index)
        .filter(|&q| n.is_final(q))
        .filter_map(|q| trees[q.index()].clone())
        .min_by_key(|t| t.num_nodes());
    if let Some(t) = &best {
        obs.record(Series::WitnessSize, t.num_nodes() as u64);
    }
    best
}

/// Shortest word of `L(nfa)` using only allowed symbols.
fn restricted_witness(nfa: &qa_strings::Nfa, allowed: &[bool]) -> Option<Vec<Symbol>> {
    let mut masked = qa_strings::Nfa::new(nfa.alphabet_len());
    for _ in 0..nfa.num_states() {
        masked.add_state();
    }
    for s_idx in 0..nfa.num_states() {
        let s = StateId::from_index(s_idx);
        masked.set_accepting(s, nfa.is_accepting(s));
        for &e in nfa.epsilon_successors(s) {
            masked.add_epsilon(s, e);
        }
        for (a, &ok) in allowed.iter().enumerate().take(nfa.alphabet_len()) {
            if !ok {
                continue;
            }
            let sym = Symbol::from_index(a);
            for &t in nfa.successors(s, sym) {
                masked.add_transition(s, sym, t);
            }
        }
    }
    for &i in nfa.initial_states() {
        masked.set_initial(i);
    }
    masked.shortest_witness()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_strings::Regex;

    #[test]
    fn circuit_automaton_is_nonempty_with_witness() {
        let a = Alphabet::from_names(["AND", "OR", "0", "1"]);
        let n = Nbtau::boolean_circuit(&a);
        assert!(is_nonempty(&n));
        let w = witness(&n).unwrap();
        assert!(n.accepts(&w));
        assert_eq!(w.num_nodes(), 1, "smallest witness is the `1` leaf");
    }

    #[test]
    fn empty_automaton() {
        let n = Nbtau::new(2);
        assert!(!is_nonempty(&n));
        assert!(witness(&n).is_none());
    }

    #[test]
    fn unreachable_final_state_is_empty() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let mut n = Nbtau::new(1);
        let q0 = n.add_state();
        let qf = n.add_state();
        n.set_final(qf, true);
        // q0 reachable at leaves; qf requires a child in qf: circular.
        n.set_language(q0, x, Regex::Epsilon.to_nfa(2)).unwrap();
        n.set_language(qf, x, Regex::Sym(Symbol::from_index(qf.index())).to_nfa(2))
            .unwrap();
        assert!(!is_nonempty(&n));
        let reached = reachable_states(&n);
        assert_eq!(reached, vec![true, false]);
    }

    #[test]
    fn deep_witness_is_assembled_correctly() {
        // qf needs children word q0 q0; q0 needs ε at leaves → witness is
        // x(x, x).
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let mut n = Nbtau::new(1);
        let q0 = n.add_state();
        let qf = n.add_state();
        n.set_final(qf, true);
        n.set_language(q0, x, Regex::Epsilon.to_nfa(2)).unwrap();
        let s0 = Regex::Sym(Symbol::from_index(q0.index()));
        n.set_language(qf, x, s0.clone().concat(s0).to_nfa(2))
            .unwrap();
        let w = witness(&n).unwrap();
        assert_eq!(w.num_nodes(), 3);
        assert!(n.accepts(&w));
    }

    #[test]
    fn growth_is_monotone_until_fixpoint() {
        // chain: q_i needs a child word q_{i-1}; reachability ripples up.
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let k = 6;
        let mut n = Nbtau::new(1);
        let states: Vec<StateId> = (0..k).map(|_| n.add_state()).collect();
        n.set_final(states[k - 1], true);
        n.set_language(states[0], x, Regex::Epsilon.to_nfa(k))
            .unwrap();
        for i in 1..k {
            n.set_language(
                states[i],
                x,
                Regex::Sym(Symbol::from_index(states[i - 1].index())).to_nfa(k),
            )
            .unwrap();
        }
        assert!(is_nonempty(&n));
        let w = witness(&n).unwrap();
        assert_eq!(w.num_nodes(), k, "chain witness");
        assert!(n.accepts(&w));
    }
}
