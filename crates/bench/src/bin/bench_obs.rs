//! Emit `BENCH_obs.json`: step-count metrics for one representative
//! workload per instrumented subsystem, captured through a live
//! [`qa_obs::Metrics`] observer.
//!
//! Unlike the `eN_*` wall-clock benches, every number here is a
//! deterministic event count (steps, head reversals, table lookups,
//! summaries, fixpoint rounds …), so the file is diffable across machines
//! and commits — a regression in an algorithm's *work* shows up even when
//! the wall clock does not move.
//!
//! Usage:
//!
//! ```text
//! bench_obs [out.json]                 # write the report (default BENCH_obs.json)
//! bench_obs --check [--baseline FILE] [--par-baseline FILE] [--tolerance F]
//! bench_obs --overhead [--gate]       # observer overhead self-measurement
//! bench_obs --par [--gate]            # parallel+memoized batch vs sequential
//! ```
//!
//! Both baseline files share one schema: `{"suite": NAME, "scenarios":
//! {…}}` where every scenario holds deterministic `counters`/`series`
//! maps, plus (for the par suite) an ungated `info` block for the
//! machine-dependent wall-clock figures. `--check` regenerates both
//! suites in memory and gates them against the checked-in baselines in a
//! single pass (default `BENCH_obs.json` + `BENCH_obs_par.json`,
//! tolerance 0.05 relative): any gated number drifting beyond tolerance —
//! or appearing / disappearing — fails with exit code 1. CI runs this so
//! a change that silently alters an algorithm's *work* cannot land
//! unnoticed. The par suite gates only the deterministic single-worker
//! cached pass (job count, cache hits/misses); per-worker figures under
//! work stealing are scheduling-dependent and stay in `info`.
//!
//! Both modes print a human-readable summary table (scenario, steps, Δ vs
//! baseline) next to the JSON.
//!
//! `--overhead` times the Example 3.4 string query under each observer
//! (Noop, Metrics, FlightRecorder, Watchdog, the full Tee stack, and the
//! full stack with a live `qa-pulse` server + span profiler attached) and
//! reports ns/step. With `--gate` it fails (exit 1) when an instrumented
//! run exceeds *generous* bounds relative to Noop — wall-clock numbers are
//! machine-dependent, so the gate only catches catastrophic regressions
//! (an accidental allocation or syscall per event), not percent-level
//! noise. The pulse row carries its own bound: serving plus profiling must
//! stay within 10% of the plain full stack (or a small absolute ns/step
//! slack on noisy runners). The scope row (full stack plus a per-state
//! [`qa_scope::ScopeProfiler`], the `--scope` / EXPLAIN ANALYZE
//! configuration) is held to the same 10%-over-stack bound.
//!
//! `--par` runs a repetition-heavy batch (string queries over a small
//! document pool plus repeated §6 decision calls) two ways — plain
//! sequential engines, then `qa-par` with 4 workers and per-worker
//! [`qa_par::BehaviorCache`]s — asserts the outcomes are identical, and
//! reports the wall-clock speedup and cache hit rate to stdout and
//! `BENCH_obs_par.json`. With `--gate` it fails unless the speedup is
//! ≥ 2x and the caches actually hit. The speedup floor is deliberately
//! achievable on a single-core runner: memoization, not the thread count,
//! carries it.

use qa_base::{Alphabet, Symbol};
use qa_obs::json::{object, ObjectWriter, Value};
use qa_obs::Metrics;
use qa_probe::gate::scenarios as report_scenarios;
use qa_strings::Dfa;
use qa_trees::Tree;
use qa_twoway::Bimachine;

// Opt-in heap accounting for the overhead rows: with `--features
// alloc-count` every allocation in this binary updates the qa_heap_*
// tallies, so the measured ns/step price the counting allocator too.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: qa_pulse::CountingAlloc = qa_pulse::CountingAlloc::new();

/// One scenario: run `work` against a fresh metrics registry and serialize
/// the resulting counters/series under `name`.
fn scenario(w: &mut ObjectWriter, name: &str, work: impl FnOnce(&Metrics)) {
    let metrics = Metrics::new();
    work(&metrics);
    w.field_raw(name, &metrics.to_json());
    println!("  {name}: done");
}

/// The e8 bimachine: a merging left DFA (exercises the γ dives of the
/// Lemma 3.10 composition).
fn sample_bimachine() -> Bimachine {
    let sym = Symbol::from_index;
    let mut left = Dfa::new(2);
    let s0 = left.add_state();
    let s1 = left.add_state();
    let s2 = left.add_state();
    left.set_initial(s0);
    for (i, s) in [s0, s1, s2].into_iter().enumerate() {
        left.set_transition(s, sym(0), s0); // merge on 0
        let rot = [s1, s2, s0][i];
        left.set_transition(s, sym(1), rot); // rotate on 1
    }
    let mut right = Dfa::new(2);
    let r0 = right.add_state();
    let r1 = right.add_state();
    right.set_initial(r0);
    for s in [r0, r1] {
        right.set_transition(s, sym(0), r1);
        right.set_transition(s, sym(1), r0);
    }
    Bimachine::new(left, right, 12, |p, q, s| {
        (p.index() * 4 + q.index() * 2 + s.index()) as u32
    })
    .unwrap()
}

/// Wrap a scenario map in the unified baseline schema shared by both
/// bench files. `info` (optional, ungated) carries machine-dependent
/// figures such as wall-clock timings.
fn suite_report(suite: &str, scenarios: &str, info: Option<&str>) -> String {
    object(|w| {
        w.field_str("suite", suite);
        w.field_raw("scenarios", scenarios);
        if let Some(info) = info {
            w.field_raw("info", info);
        }
    })
}

/// Run every scenario and serialize the full `obs` suite report.
fn generate_report() -> String {
    suite_report("obs", &generate_scenarios(), None)
}

/// Run every step-count scenario and serialize the scenario map.
fn generate_scenarios() -> String {
    object(|w| {
        // Example 3.4 string query: the literal two-way run.
        scenario(w, "example_3_4_string_query", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            let word = qa_bench::random_word(512, 34);
            qa.query_with(&word, &mut m.observer()).unwrap();
        });

        // The same query via the Theorem 3.9 behavior recurrences.
        scenario(w, "example_3_4_via_behavior", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            let word = qa_bench::random_word(512, 34);
            qa.query_via_behavior_with(&word, &mut m.observer());
        });

        // Lemma 3.10: Hopcroft–Ullman composition, then a run of the
        // composed machine.
        scenario(w, "lemma_3_10_composition", |m| {
            let bim = sample_bimachine();
            let gsqa = qa_twoway::hopcroft_ullman::compose_with(&bim, &mut m.observer()).unwrap();
            let word = qa_bench::random_word(256, 35);
            gsqa.run_with(&word, &mut m.observer()).unwrap();
        });

        // Example 4.4: ranked circuit query on a random circuit.
        scenario(w, "example_4_4_ranked_query", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::ranked::query::example_4_4(&sigma);
            let t = qa_bench::random_circuit(255, 36);
            qa.query_with(&t, &mut m.observer()).unwrap();
        });

        // Example 5.9: unranked circuit query (slender down transitions).
        scenario(w, "example_5_9_unranked_query", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::unranked::query::example_5_9(&sigma);
            let or = sigma.symbol("OR");
            let zero = sigma.symbol("0");
            let one = sigma.symbol("1");
            let mut t = Tree::leaf(or);
            for i in 0..256usize {
                t.add_child(t.root(), if i % 2 == 0 { zero } else { one });
            }
            qa.query_with(&t, &mut m.observer()).unwrap();
        });

        // Example 5.14: the SQAu — stay transitions are the metric here.
        scenario(w, "example_5_14_sqau_query", |m| {
            let sigma = qa_bench::binary_alphabet();
            let qa = qa_core::unranked::query::example_5_14(&sigma);
            let one = sigma.symbol("1");
            let zero = sigma.symbol("0");
            let mut t = Tree::leaf(zero);
            for i in 0..256usize {
                t.add_child(t.root(), if i % 3 == 0 { one } else { zero });
            }
            qa.query_with(&t, &mut m.observer()).unwrap();
        });

        // Figure 5: two-pass ranked unary MSO evaluation.
        scenario(w, "fig5_ranked_eval", |m| {
            let mut a = Alphabet::from_names(["s", "t"]);
            let phi = qa_mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
            let d = qa_mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
            let t = qa_trees::generate::complete(a.symbol("s"), 2, 8);
            qa_mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut m.observer());
        });

        // Lemma 5.2: NBTAu non-emptiness fixpoint + witness assembly.
        scenario(w, "lemma_5_2_emptiness", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let n = qa_core::unranked::Nbtau::boolean_circuit(&sigma);
            qa_core::unranked::emptiness::is_nonempty_with(&n, &mut m.observer());
            qa_core::unranked::emptiness::witness_with(&n, &mut m.observer());
        });

        // Theorem 6.3: query non-emptiness via the summary fixpoint.
        scenario(w, "thm_6_3_nonemptiness", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::ranked::query::example_4_4(&sigma);
            qa_decision::ranked_decisions::non_emptiness_with(
                &qa,
                qa_decision::ranked_decisions::DEFAULT_MAX_ITEMS,
                &mut m.observer(),
            )
            .unwrap();
        });

        // Cached batch evaluation: 8 repeats of one word through a shared
        // CrossingCache — the cache_hits/cache_misses counters are the
        // deterministic fingerprint of the Theorem 3.9 memoization.
        scenario(w, "example_3_4_cached_batch", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            let word = qa_bench::random_word(512, 34);
            let mut cache = qa_twoway::CrossingCache::new();
            for _ in 0..8 {
                qa.query_cached(&word, &mut cache, &mut m.observer());
            }
        });

        // Repeated non-emptiness through a SummaryCache: the second call
        // must answer every subtree summary from the cache.
        scenario(w, "thm_6_3_nonemptiness_cached", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::ranked::query::example_4_4(&sigma);
            let mut cache = qa_decision::ranked_decisions::SummaryCache::new();
            for _ in 0..2 {
                qa_decision::ranked_decisions::non_emptiness_cached(
                    &qa,
                    qa_decision::ranked_decisions::DEFAULT_MAX_ITEMS,
                    &mut cache,
                    &mut m.observer(),
                )
                .unwrap();
            }
        });

        // §6 string decisions: equivalence via crossing-sequence NFAs.
        scenario(w, "string_equivalence", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            qa_decision::string_decisions::equivalence_with(&qa, &qa, &mut m.observer()).unwrap();
            qa_decision::string_decisions::non_emptiness_with(&qa, &mut m.observer()).unwrap();
        });

        // Proposition 6.1: tiling reduction size.
        scenario(w, "prop_6_1_tiling_reduction", |m| {
            let inst = qa_decision::tiling::easy_instance(3);
            qa_decision::tiling::to_tree_automaton_with(&inst, &mut m.observer()).unwrap();
        });
    })
}

/// `steps` counter of one scenario in a parsed report (suite-wrapped or
/// legacy flat).
fn steps_of(report: &Value, scenario: &str) -> Option<u64> {
    report_scenarios(report)
        .get(scenario)?
        .get("counters")?
        .get("steps")?
        .as_u64()
}

/// Print the human-readable summary: one row per scenario with its step
/// count and, when a baseline is available, the delta against it.
fn print_summary(current: &Value, baseline: Option<&Value>) {
    let Some(scenarios) = report_scenarios(current).as_obj() else {
        return;
    };
    println!();
    println!("{:<28} {:>10} {:>12}", "scenario", "steps", "Δ baseline");
    for (name, _) in scenarios {
        let steps = steps_of(current, name);
        let steps_text = steps.map_or("-".to_string(), |s| s.to_string());
        let delta = match (steps, baseline.and_then(|b| steps_of(b, name))) {
            (Some(cur), Some(base)) if base == cur => "=".to_string(),
            (Some(cur), Some(base)) => {
                let pct = (cur as f64 - base as f64) / base.max(1) as f64 * 100.0;
                format!("{:+} ({pct:+.1}%)", cur as i64 - base as i64)
            }
            (Some(_), None) => "new".to_string(),
            // Scenario counts no steps (it meters other work).
            (None, _) => "-".to_string(),
        };
        println!("{name:<28} {steps_text:>10} {delta:>12}");
    }
    println!();
}

/// Gate one suite: parse `baseline_path`, compare its scenarios against
/// the freshly generated `current_scenarios`, print drifts. Returns the
/// drift count.
fn check_suite(baseline_path: &str, suite: &str, current_scenarios: &str, tolerance: f64) -> usize {
    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = qa_obs::json::parse(&baseline_text).expect("parse baseline");
    if let Some(tag) = qa_probe::gate::suite(&baseline) {
        assert_eq!(
            tag, suite,
            "{baseline_path} carries suite {tag:?}, expected {suite:?}"
        );
    }
    let current = qa_obs::json::parse(current_scenarios).expect("parse generated scenarios");
    print_summary(&current, Some(&baseline));
    let drifts = qa_probe::gate::compare_reports(report_scenarios(&baseline), &current, tolerance);
    for d in &drifts {
        println!("gate: DRIFT [{suite}] {}", d.render());
    }
    drifts.len()
}

/// Regenerate both suites and compare them against their baselines in one
/// pass; returns the number of metrics that drifted beyond `tolerance`.
fn check(baseline_path: &str, par_baseline_path: &str, tolerance: f64) -> usize {
    println!(
        "# bench_obs --check (baselines {baseline_path} + {par_baseline_path}, tolerance {tolerance})"
    );
    let mut drifts = check_suite(baseline_path, "obs", &generate_scenarios(), tolerance);
    println!("# suite obs_par (deterministic single-worker cached pass)");
    let par_scen = with_par_batch(|jobs, _| par_scenarios(jobs));
    drifts += check_suite(par_baseline_path, "obs_par", &par_scen, tolerance);
    if drifts == 0 {
        println!("gate: OK — all step counts within tolerance across both suites");
    } else {
        println!(
            "gate: {drifts} metric(s) drifted; regenerate {baseline_path} / {par_baseline_path} if intentional"
        );
    }
    drifts
}

/// Observer overhead self-measurement on the Example 3.4 string query.
///
/// Returns the number of gate violations (0 when `gate` is false). The
/// bounds are deliberately loose — per-step absolute slack OR a large
/// relative multiplier — because wall-clock noise on shared CI runners is
/// real; the gate exists to catch an accidental per-event allocation or
/// syscall, which blows past both bounds at once.
fn overhead(gate: bool) -> usize {
    use qa_flight::{Budget, FlightRecorder, Watchdog};
    use qa_obs::{Counter, NoopObserver, Tee};

    /// A scenario passes if EITHER bound holds.
    const MAX_EXTRA_NS_PER_STEP: f64 = 250.0;
    const MAX_RELATIVE: f64 = 50.0;

    let a = Alphabet::from_names(["0", "1"]);
    let qa = qa_twoway::string_qa::example_3_4_qa(&a);
    let word = qa_bench::random_word(512, 34);

    // Work per run, for the ns/step normalization.
    let count_metrics = Metrics::new();
    qa.query_with(&word, &mut count_metrics.observer()).unwrap();
    let steps = count_metrics.get(Counter::Steps).max(1);

    let mut h = qa_bench::Harness::new("obs_overhead");
    let noop = h.bench("noop", || qa.query_with(&word, &mut NoopObserver).unwrap());

    let metrics = Metrics::new();
    let ns_metrics = h.bench("metrics", || {
        qa.query_with(&word, &mut metrics.observer()).unwrap()
    });

    let mut recorder = FlightRecorder::with_capacity(256);
    let ns_flight = h.bench("flight_recorder", || {
        qa.query_with(&word, &mut recorder).unwrap()
    });

    let mut dog = Watchdog::new(NoopObserver, Budget::steps(u64::MAX));
    let ns_watchdog = h.bench("watchdog", || qa.query_with(&word, &mut dog).unwrap());

    let mut stack = Watchdog::new(
        Tee(FlightRecorder::with_capacity(256), metrics.observer()),
        Budget::steps(u64::MAX),
    );
    let ns_stack = h.bench("watchdog+flight+metrics", || {
        qa.query_with(&word, &mut stack).unwrap()
    });

    // The --serve configuration: the full stack plus a span profiler, with
    // an idle pulse server bound on loopback for the duration (and, under
    // `--features alloc-count`, the counting allocator priced into every
    // row) — what `qa-fleet --serve` adds per run. The fleet's live
    // /metrics feed is a per-run registry merge, not a per-event tee, so
    // it does not show up here. Gated against the full stack (≤ 10%).
    let live = std::sync::Arc::new(Metrics::new());
    let pulse_state = qa_pulse::PulseState::new(std::sync::Arc::clone(&live), "qa_bench");
    let pulse_server = qa_pulse::PulseServer::serve("127.0.0.1:0", pulse_state)
        .expect("bind loopback pulse server");
    let serve_metrics = Metrics::new();
    let mut serve_stack = Watchdog::new(
        Tee(
            FlightRecorder::with_capacity(256),
            Tee(serve_metrics.observer(), qa_pulse::SpanProfiler::new()),
        ),
        Budget::steps(u64::MAX),
    );
    let ns_pulse = h.bench("stack+pulse(serve,profile)", || {
        qa.query_with(&word, &mut serve_stack).unwrap()
    });
    pulse_server.shutdown();

    // The --scope configuration: the full stack plus a per-state
    // ScopeProfiler — what `qa-fleet --scope` and a serving-daemon
    // `"explain": true` request add per run. Gated like pulse: EXPLAIN
    // ANALYZE must cost at most 10% over the plain full stack (or a small
    // absolute ns/step slack).
    let scope_metrics = Metrics::new();
    let mut scope_stack = Watchdog::new(
        Tee(
            FlightRecorder::with_capacity(256),
            Tee(scope_metrics.observer(), qa_scope::ScopeProfiler::new()),
        ),
        Budget::steps(u64::MAX),
    );
    let ns_scope = h.bench("stack+scope(explain)", || {
        qa.query_with(&word, &mut scope_stack).unwrap()
    });

    println!();
    println!(
        "{:<24} {:>12} {:>10} {:>9}",
        "observer", "ns/run", "ns/step", "x noop"
    );
    let mut violations = 0usize;
    for (name, ns) in [
        ("noop", noop),
        ("metrics", ns_metrics),
        ("flight_recorder", ns_flight),
        ("watchdog", ns_watchdog),
        ("watchdog+flight+metrics", ns_stack),
    ] {
        let per_step = ns / steps as f64;
        let rel = ns / noop.max(1e-9);
        let extra_per_step = (ns - noop) / steps as f64;
        let ok = extra_per_step <= MAX_EXTRA_NS_PER_STEP || rel <= MAX_RELATIVE;
        println!(
            "{name:<24} {ns:>12.1} {per_step:>10.2} {rel:>8.1}x{}",
            if ok { "" } else { "  <-- OVER BUDGET" }
        );
        if gate && !ok {
            violations += 1;
        }
    }
    // The pulse row has its own budget: serving + profiling must cost at
    // most 10% over the plain full stack (or a small absolute ns/step
    // slack, for runners where the stack itself is a handful of ns).
    const MAX_PULSE_RELATIVE: f64 = 1.10;
    const MAX_PULSE_EXTRA_NS_PER_STEP: f64 = 25.0;
    {
        let per_step = ns_pulse / steps as f64;
        let rel_stack = ns_pulse / ns_stack.max(1e-9);
        let extra_per_step = (ns_pulse - ns_stack) / steps as f64;
        let ok = rel_stack <= MAX_PULSE_RELATIVE || extra_per_step <= MAX_PULSE_EXTRA_NS_PER_STEP;
        println!(
            "{:<24} {ns_pulse:>12.1} {per_step:>10.2} {:>7.2}x stack{}",
            "stack+pulse",
            rel_stack,
            if ok { "" } else { "  <-- OVER BUDGET" }
        );
        if gate && !ok {
            violations += 1;
        }
    }
    // The scope row carries the same bound as pulse: per-state profiling
    // must stay within 10% of the plain full stack (or the absolute slack).
    const MAX_SCOPE_RELATIVE: f64 = 1.10;
    const MAX_SCOPE_EXTRA_NS_PER_STEP: f64 = 25.0;
    {
        let per_step = ns_scope / steps as f64;
        let rel_stack = ns_scope / ns_stack.max(1e-9);
        let extra_per_step = (ns_scope - ns_stack) / steps as f64;
        let ok = rel_stack <= MAX_SCOPE_RELATIVE || extra_per_step <= MAX_SCOPE_EXTRA_NS_PER_STEP;
        println!(
            "{:<24} {ns_scope:>12.1} {per_step:>10.2} {:>7.2}x stack{}",
            "stack+scope",
            rel_stack,
            if ok { "" } else { "  <-- OVER BUDGET" }
        );
        if gate && !ok {
            violations += 1;
        }
    }
    if gate {
        if violations == 0 {
            println!(
                "gate: OK — every observer within {MAX_EXTRA_NS_PER_STEP} extra ns/step or {MAX_RELATIVE}x of noop; pulse and scope within {MAX_PULSE_RELATIVE}x of the full stack"
            );
        } else {
            println!("gate: {violations} observer(s) over budget");
        }
    }
    violations
}

/// A 2DFA that makes `sweeps` full right-then-left passes over the word
/// before accepting, selecting positions labelled `1` on the first
/// leftward sweep.
///
/// Behavior analysis collapses all those sweeps into one crossing-sequence
/// table per word, so the per-word work of `query_via_behavior` grows with
/// `sweeps` while a [`qa_twoway::CrossingCache`] pays it once per distinct
/// word — the workload that makes memoization, not thread count, carry the
/// `--par` gate.
fn zigzag_qa(a: &Alphabet, sweeps: usize) -> qa_twoway::StringQa {
    use qa_twoway::twodfa::{Dir, TwoDfaBuilder};
    use qa_twoway::Tape;
    let mut b = TwoDfaBuilder::new(a.len());
    let rs: Vec<_> = (0..sweeps).map(|_| b.add_state()).collect();
    let ls: Vec<_> = (0..sweeps).map(|_| b.add_state()).collect();
    let f = b.add_state();
    b.set_initial(rs[0]);
    b.set_final(f, true);
    for i in 0..sweeps {
        b.set_action(rs[i], Tape::LeftMarker, Dir::Right, rs[i]);
        b.set_action_all_symbols(rs[i], Dir::Right, rs[i]);
        b.set_action(rs[i], Tape::RightMarker, Dir::Left, ls[i]);
        b.set_action_all_symbols(ls[i], Dir::Left, ls[i]);
        let next = if i + 1 < sweeps { rs[i + 1] } else { f };
        b.set_action(ls[i], Tape::LeftMarker, Dir::Right, next);
    }
    let mut qa = qa_twoway::StringQa::new(b.build().expect("valid zigzag 2DFA"));
    qa.set_selecting(ls[0], a.symbol("1"), true);
    qa
}

/// Build the repetition-heavy `--par` batch and hand it (plus the raw MSO
/// automaton the sequential baseline needs) to `f`. The jobs borrow all
/// the locals constructed here, hence the callback shape.
fn with_par_batch<R>(f: impl FnOnce(&[qa_par::Job<'_>], &qa_core::ranked::Dbta) -> R) -> R {
    use qa_decision::ranked_decisions::DEFAULT_MAX_ITEMS;
    use qa_par::Job;

    let a = Alphabet::from_names(["0", "1"]);
    // 16 sweeps: deep enough that the behavior table dwarfs the shared
    // selection pass, shallow enough that one uncached run stays in the
    // low milliseconds.
    let sqa = zigzag_qa(&a, 16);
    let words: Vec<Vec<Symbol>> = (0..6)
        .map(|i| qa_bench::random_word(1024, 40 + i as u64))
        .collect();
    let circ = qa_bench::circuit_alphabet();
    let rqa = qa_core::ranked::query::example_4_4(&circ);

    // Wide flat trees for the SQAu: every inner node's up/stay decision
    // reads its full children pair-string, so on repeated documents the
    // memoized decision replaces classifier + matcher + GSQA runs.
    let uqa = qa_core::unranked::query::example_5_14(&a);
    let zero = a.symbol("0");
    let one = a.symbol("1");
    let utrees: Vec<Tree> = (0..6)
        .map(|d| {
            let mut t = Tree::leaf(zero);
            for i in 0..512usize {
                t.add_child(t.root(), if (i + d) % 3 == 0 { one } else { zero });
            }
            t
        })
        .collect();

    // A compiled MSO unary query: the prepared form pays totalization once
    // per batch instead of once per document.
    let mut ma = Alphabet::from_names(["s", "t"]);
    let phi = qa_mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut ma).unwrap();
    let dbta = qa_mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
    let prepared = qa_mso::PreparedUnary::new(&dbta, 2);
    // Small complete trees (heights 2..4): evaluation itself is cheap, so
    // the per-call totalization that `PreparedUnary` amortizes dominates.
    let mtrees: Vec<Tree> = (2..5)
        .map(|h| qa_trees::generate::complete(ma.symbol("s"), 2, h))
        .collect();

    let mut jobs: Vec<Job> = Vec::new();
    for r in 0..40 {
        for w in &words {
            jobs.push(Job::String { qa: &sqa, word: w });
        }
        if r < 4 {
            for t in &utrees {
                jobs.push(Job::Unranked { qa: &uqa, tree: t });
            }
        }
        for t in &mtrees {
            jobs.push(Job::Mso {
                query: &prepared,
                tree: t,
                unranked: false,
            });
        }
    }
    for _ in 0..8 {
        jobs.push(Job::NonEmptiness {
            qa: &rqa,
            max_items: DEFAULT_MAX_ITEMS,
        });
    }
    f(&jobs, &dbta)
}

/// The deterministic, gated face of the par suite: one worker, one cache,
/// jobs in order — the cache hit/miss counts are then exact machine
/// fingerprints of the memoization, unlike the stealing-dependent
/// per-worker figures of the timed 4-worker pass.
fn par_scenarios(jobs: &[qa_par::Job<'_>]) -> String {
    use qa_obs::Counter;
    let det = Metrics::new();
    let _ = qa_par::par_evaluate_with(1, jobs, |_| det.observer());
    object(|w| {
        let counters = object(|c| {
            c.field_u64("jobs", jobs.len() as u64);
            c.field_u64("cache_hits", det.get(Counter::CacheHits));
            c.field_u64("cache_misses", det.get(Counter::CacheMisses));
        });
        w.field_raw(
            "par_cached_batch",
            &object(|s| s.field_raw("counters", &counters)),
        );
    })
}

/// Parallel + memoized batch evaluation vs the plain sequential engines.
///
/// Returns the number of gate violations (0 when `gate` is false). The
/// candidate must produce outcomes identical to the baseline (asserted
/// unconditionally), and under `--gate` must be ≥ 2x faster with a nonzero
/// cache hit count. The batch is repetition-heavy by design — a small
/// document pool and identical decision calls — so the BehaviorCache, not
/// the worker count, supplies the speedup; the gate therefore also passes
/// on single-core CI runners.
fn par_bench(gate: bool) -> usize {
    with_par_batch(|jobs, dbta| par_bench_inner(gate, jobs, dbta))
}

fn par_bench_inner(gate: bool, jobs: &[qa_par::Job<'_>], dbta: &qa_core::ranked::Dbta) -> usize {
    use qa_decision::ranked_decisions::non_emptiness_with;
    use qa_obs::{Counter, Metrics, NoopObserver};
    use qa_par::{par_evaluate, par_evaluate_with, Job, Outcome};

    const WORKERS: usize = 4;

    // Baseline: the plain uncached engines, one job after another (for the
    // MSO jobs that includes the per-call totalization the prepared form
    // amortizes away).
    let seq_run = || -> Vec<Outcome> {
        jobs.iter()
            .map(|job| match *job {
                Job::String { qa, word } => Outcome::Positions(qa.query_via_behavior(word)),
                Job::Unranked { qa, tree } => match qa.query(tree) {
                    Ok(nodes) => Outcome::Nodes(nodes),
                    Err(e) => Outcome::Error(e.to_string()),
                },
                Job::Mso { tree, .. } => {
                    Outcome::Nodes(qa_mso::query_eval::eval_unary_ranked(dbta, tree, 2))
                }
                Job::NonEmptiness { qa, max_items } => {
                    match non_emptiness_with(qa, max_items, &mut NoopObserver) {
                        Ok(w) => Outcome::Witness(w.map(|w| (w.tree.num_nodes(), w.node))),
                        Err(e) => Outcome::Error(e.to_string()),
                    }
                }
                _ => unreachable!("batch contains no ranked/containment jobs"),
            })
            .collect()
    };
    let par_run = || par_evaluate(WORKERS, jobs);

    let time_best_of = |runs: usize, f: &dyn Fn() -> Vec<Outcome>| -> (Vec<Outcome>, f64) {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..runs {
            let t0 = std::time::Instant::now();
            out = f();
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        (out, best)
    };
    let (seq_out, seq_ns) = time_best_of(3, &seq_run);
    let (par_out, par_ns) = time_best_of(3, &par_run);
    assert_eq!(
        seq_out, par_out,
        "parallel cached outcomes must be identical to sequential uncached"
    );

    // Instrumented pass for the hit rate (not timed).
    let regs: Vec<Metrics> = (0..WORKERS).map(|_| Metrics::new()).collect();
    let instrumented = par_evaluate_with(WORKERS, jobs, |wid| regs[wid].observer());
    assert_eq!(
        instrumented, seq_out,
        "instrumentation must not change results"
    );
    let hits: u64 = regs.iter().map(|m| m.get(Counter::CacheHits)).sum();
    let misses: u64 = regs.iter().map(|m| m.get(Counter::CacheMisses)).sum();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = seq_ns / par_ns.max(1.0);

    println!();
    println!("{:<26} {:>14}", "batch", format!("{} job(s)", jobs.len()));
    println!("{:<26} {:>14.2} ms", "sequential uncached", seq_ns / 1e6);
    println!(
        "{:<26} {:>14.2} ms",
        format!("parallel({WORKERS}) cached"),
        par_ns / 1e6
    );
    println!("{:<26} {:>13.2}x", "speedup", speedup);
    println!(
        "{:<26} {:>10} / {:>6} ({:.1}%)",
        "cache hits/misses",
        hits,
        misses,
        hit_rate * 100.0
    );

    // Unified-schema export: `scenarios` holds the deterministic gated
    // counters (--check reads them), `info` the machine-dependent
    // wall-clock figures (never gated).
    let info = object(|w| {
        w.field_u64("workers", WORKERS as u64);
        w.field_f64("seq_ns", seq_ns);
        w.field_f64("par_ns", par_ns);
        w.field_f64("speedup", speedup);
        w.field_u64("stealing_cache_hits", hits);
        w.field_u64("stealing_cache_misses", misses);
        w.field_f64("hit_rate", hit_rate);
    });
    let report = suite_report("obs_par", &par_scenarios(jobs), Some(&info));
    std::fs::write("BENCH_obs_par.json", format!("{report}\n")).expect("write BENCH_obs_par.json");
    println!("wrote BENCH_obs_par.json");

    let mut violations = 0usize;
    if gate {
        if speedup < 2.0 {
            println!("gate: FAIL — speedup {speedup:.2}x < 2.0x");
            violations += 1;
        }
        if hits == 0 {
            println!("gate: FAIL — BehaviorCache never hit");
            violations += 1;
        }
        if violations == 0 {
            println!("gate: OK — {speedup:.2}x speedup, {hits} cache hit(s)");
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--overhead") {
        let gate = args.iter().any(|a| a == "--gate");
        if overhead(gate) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--par") {
        let gate = args.iter().any(|a| a == "--gate");
        if par_bench(gate) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if args.iter().any(|a| a == "--check") {
        let flag_val = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let baseline = flag_val("--baseline").unwrap_or_else(|| "BENCH_obs.json".to_string());
        let par_baseline =
            flag_val("--par-baseline").unwrap_or_else(|| "BENCH_obs_par.json".to_string());
        let tolerance: f64 = flag_val("--tolerance")
            .map(|t| t.parse().expect("--tolerance takes a number"))
            .unwrap_or(0.05);
        if check(&baseline, &par_baseline, tolerance) > 0 {
            std::process::exit(1);
        }
        return;
    }

    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    println!("# bench_obs -> {out_path}");
    // Read any previous report first so the summary can show the delta.
    let previous = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| qa_obs::json::parse(&t).ok());
    let report = generate_report();
    let parsed = qa_obs::json::parse(&report).expect("parse generated report");
    print_summary(&parsed, previous.as_ref());
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("wrote {out_path}");
}
