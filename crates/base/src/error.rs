//! Workspace-wide error type.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the query-automata workspace.
///
/// The library favours construction-time validation: automata constructors
/// return `Err` for ill-formed machines (overlapping `U`/`D` sets,
/// non-deterministic transition tables, non-slender down languages, …) so
/// that the run engines can assume well-formed inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A parser rejected its input (regex, s-expression, MSO, XML, DTD).
    Parse {
        /// Which parser failed, e.g. `"regex"`, `"mso"`, `"xml"`.
        what: &'static str,
        /// Human-readable description with position information.
        message: String,
    },
    /// An automaton definition violates a structural invariant.
    IllFormed {
        /// Which invariant, e.g. `"2DFA U/D overlap"`.
        invariant: &'static str,
        /// Details about the offending component.
        message: String,
    },
    /// A run did not terminate within the configured step budget.
    ///
    /// The paper only considers automata that always halt; halting is
    /// decidable but expensive, so run engines enforce a fuel bound and
    /// report overruns explicitly instead of looping.
    FuelExhausted {
        /// The bound that was exceeded.
        budget: u64,
    },
    /// A run was aborted by a watchdog checkpoint before completion.
    ///
    /// Unlike [`Error::FuelExhausted`] (the engine's own loop-detection
    /// bound), this is a caller-imposed budget — steps, head reversals or
    /// wall-clock — enforced through the observer `checkpoint()` hook so
    /// that batch drivers can bound every run without forking the engines.
    RunAborted {
        /// Which budget tripped: `"steps"`, `"head_reversals"`, `"wall_ms"`.
        what: &'static str,
        /// The configured budget.
        limit: u64,
        /// The observed value that exceeded it.
        actual: u64,
    },
    /// A run reached a configuration with no applicable transition that is
    /// not accepting (the machine "got stuck").
    Stuck {
        /// Description of the stuck configuration.
        message: String,
    },
    /// Input data is outside the automaton's domain (wrong alphabet, rank
    /// exceeded, …).
    Domain {
        /// Description of the mismatch.
        message: String,
    },
    /// A validation (e.g. DTD validation) failed; carries the reason.
    Invalid {
        /// Description of the first violation found.
        message: String,
    },
}

impl Error {
    /// Shorthand for a parse error.
    pub fn parse(what: &'static str, message: impl Into<String>) -> Self {
        Error::Parse {
            what,
            message: message.into(),
        }
    }

    /// Shorthand for an ill-formed automaton error.
    pub fn ill_formed(invariant: &'static str, message: impl Into<String>) -> Self {
        Error::IllFormed {
            invariant,
            message: message.into(),
        }
    }

    /// Shorthand for a domain error.
    pub fn domain(message: impl Into<String>) -> Self {
        Error::Domain {
            message: message.into(),
        }
    }

    /// Shorthand for a watchdog abort.
    pub fn aborted(what: &'static str, limit: u64, actual: u64) -> Self {
        Error::RunAborted {
            what,
            limit,
            actual,
        }
    }

    /// Shorthand for a stuck-run error.
    pub fn stuck(message: impl Into<String>) -> Self {
        Error::Stuck {
            message: message.into(),
        }
    }

    /// Shorthand for a validation failure.
    pub fn invalid(message: impl Into<String>) -> Self {
        Error::Invalid {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { what, message } => write!(f, "{what} parse error: {message}"),
            Error::IllFormed { invariant, message } => {
                write!(f, "ill-formed automaton ({invariant}): {message}")
            }
            Error::FuelExhausted { budget } => {
                write!(f, "run exceeded fuel budget of {budget} steps")
            }
            Error::RunAborted {
                what,
                limit,
                actual,
            } => {
                write!(
                    f,
                    "run aborted by watchdog: {what} = {actual} exceeded budget {limit}"
                )
            }
            Error::Stuck { message } => write!(f, "run stuck: {message}"),
            Error::Domain { message } => write!(f, "domain error: {message}"),
            Error::Invalid { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::parse("regex", "unexpected `)` at offset 3");
        assert_eq!(
            e.to_string(),
            "regex parse error: unexpected `)` at offset 3"
        );
        let e = Error::FuelExhausted { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn run_aborted_displays_budget_and_actual() {
        let e = Error::aborted("steps", 1000, 1001);
        assert!(matches!(e, Error::RunAborted { .. }));
        assert_eq!(
            e.to_string(),
            "run aborted by watchdog: steps = 1001 exceeded budget 1000"
        );
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::domain("x"), Error::Domain { .. }));
        assert!(matches!(Error::stuck("x"), Error::Stuck { .. }));
        assert!(matches!(Error::invalid("x"), Error::Invalid { .. }));
        assert!(matches!(
            Error::ill_formed("inv", "x"),
            Error::IllFormed { .. }
        ));
    }
}
