//! Selection provenance: *why* was this position/node selected?
//!
//! The paper's selection semantics are certificate-shaped: a position of a
//! string query automaton is selected because the run visits it in a state
//! `s` with `λ(s, wᵢ) = 1` — the visit sequence at the position (a fragment
//! of the crossing sequence) is the certificate (Theorem 3.9 reconstructs
//! exactly this from the `Assumed` sets). A node of a ranked query
//! automaton is selected because some cut passes through it with a
//! selecting `(state, label)` pair (Definition 4.3, the machinery behind
//! Theorem 4.8). A strong unranked automaton may additionally owe a state
//! at a node to a stay transition, whose certificate is the GSQA child-run
//! output that assigned it (Definition 5.11, Theorem 5.17).
//!
//! [`ProvenanceObserver`] records the event stream an instrumented run
//! emits and rebuilds these certificates on demand.

use qa_obs::json::{self};
use qa_obs::Observer;

/// One recorded visit to a position/node: the `step`-th configuration event
/// of the run put the machine there in `state`, moving in `dir`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Visit {
    /// 0-based index into the run's configuration event stream.
    pub step: u64,
    /// Machine state at the visit.
    pub state: u32,
    /// Direction (−1 left/up, +1 right/down, 0 in place).
    pub dir: i8,
}

/// The GSQA child-run certificate behind a stay-assigned state
/// (Definition 5.11): during a stay transition at `parent`, the generalized
/// string query automaton read the children's `(state, label)` word and
/// output `state` for the child at `child`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StayCertificate {
    /// The node whose children were rewritten.
    pub parent: u32,
    /// The child node that received the state.
    pub child: u32,
    /// The assigned state.
    pub state: u32,
}

/// The certificate behind one selected position/node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explanation {
    /// The selected position (tape coordinates for strings, node index for
    /// trees — the same space as the run's configuration events).
    pub pos: u32,
    /// The witnessing state: the run assumed it here and `λ(state, sym) = 1`.
    pub state: u32,
    /// The symbol/label index read at the position.
    pub sym: u32,
    /// Every recorded visit to the position, in run order — the
    /// crossing-sequence fragment (strings) or the assumed-state sequence
    /// at the cut (trees). The witnessing state appears in it.
    pub visits: Vec<Visit>,
    /// When the witnessing state was produced by a stay transition, the
    /// GSQA child-run certificate that assigned it.
    pub stay: Option<StayCertificate>,
}

impl Explanation {
    /// Human-readable rendering, one certificate per call.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "position {} selected: λ(q{}, σ{}) = 1\n",
            self.pos, self.state, self.sym
        );
        out.push_str("  visits:");
        for v in &self.visits {
            let arrow = match v.dir {
                d if d < 0 => "<-",
                d if d > 0 => "->",
                _ => "--",
            };
            out.push_str(&format!(" [step {} q{} {}]", v.step, v.state, arrow));
        }
        out.push('\n');
        if let Some(s) = &self.stay {
            out.push_str(&format!(
                "  stay certificate: GSQA child run at node {} assigned q{} to child {}\n",
                s.parent, s.state, s.child
            ));
        }
        out
    }

    /// JSON rendering:
    /// `{"pos", "state", "sym", "visits": [{step, state, dir}…],
    /// "stay": {parent, child, state} | null}`.
    pub fn to_json(&self) -> String {
        json::object(|w| {
            w.field_u64("pos", self.pos as u64);
            w.field_u64("state", self.state as u64);
            w.field_u64("sym", self.sym as u64);
            let visits = json::array(self.visits.iter().map(|v| {
                json::object(|vw| {
                    vw.field_u64("step", v.step);
                    vw.field_u64("state", v.state as u64);
                    vw.field_raw("dir", &v.dir.to_string());
                })
            }));
            w.field_raw("visits", &visits);
            match &self.stay {
                Some(s) => w.field_raw(
                    "stay",
                    &json::object(|sw| {
                        sw.field_u64("parent", s.parent as u64);
                        sw.field_u64("child", s.child as u64);
                        sw.field_u64("state", s.state as u64);
                    }),
                ),
                None => w.field_raw("stay", "null"),
            }
        })
    }
}

#[derive(Clone, Copy, Debug)]
struct ConfigEvent {
    state: u32,
    pos: u32,
    dir: i8,
}

#[derive(Clone, Copy, Debug)]
struct SelectionEvent {
    pos: u32,
    state: u32,
    sym: u32,
}

/// Observer recording the provenance-relevant event stream of one run:
/// configuration events, stay assignments and selection verdicts. Attach it
/// to any `*_with` entry point (alone or [`Tee`]d with other sinks), then
/// ask [`ProvenanceObserver::why_selected`].
///
/// The configuration log is capped (default 1 Mi events) so probing a
/// runaway run cannot exhaust memory; [`ProvenanceObserver::truncated`]
/// reports whether certificates may be missing visits.
///
/// [`Tee`]: qa_obs::Tee
#[derive(Debug)]
pub struct ProvenanceObserver {
    configs: Vec<ConfigEvent>,
    stays: Vec<StayCertificate>,
    selections: Vec<SelectionEvent>,
    cap: usize,
    truncated: bool,
}

impl Default for ProvenanceObserver {
    fn default() -> Self {
        Self::with_capacity(1 << 20)
    }
}

impl ProvenanceObserver {
    /// Observer with the default configuration-event cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observer recording at most `cap` configuration events.
    pub fn with_capacity(cap: usize) -> Self {
        ProvenanceObserver {
            configs: Vec::new(),
            stays: Vec::new(),
            selections: Vec::new(),
            cap,
            truncated: false,
        }
    }

    /// Whether the configuration cap was hit (certificates may be partial).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The selected positions, in selection-scan order.
    pub fn selected_positions(&self) -> Vec<u32> {
        self.selections.iter().map(|s| s.pos).collect()
    }

    /// The certificate behind the selection of `pos`, or `None` when the
    /// run did not select it. `pos` is in the engine's configuration
    /// coordinates: node indices for trees, tape positions (0 = `⊳`) for
    /// strings — see [`ProvenanceObserver::why_selected_word`] for 0-based
    /// word indices.
    ///
    /// # Examples
    ///
    /// Attach the observer to an instrumented string query, then ask why a
    /// tape position made it into the result:
    ///
    /// ```
    /// use qa_base::Alphabet;
    /// use qa_probe::ProvenanceObserver;
    /// use qa_twoway::string_qa::example_3_4_qa;
    ///
    /// let a = Alphabet::from_names(["0", "1"]);
    /// let qa = example_3_4_qa(&a); // selects every 1 at an odd position from the right
    /// let word = vec![a.symbol("1"), a.symbol("0"), a.symbol("1")];
    ///
    /// let mut obs = ProvenanceObserver::new();
    /// let selected = qa.query_with(&word, &mut obs)?;
    /// assert_eq!(selected, vec![0, 2]);
    ///
    /// // Word index 0 is tape position 1 (position 0 is the ⊳ endmarker).
    /// let why = obs.why_selected(1).expect("selected positions have certificates");
    /// assert!(why.visits.iter().any(|v| v.state == why.state),
    ///         "the witnessing state appears in the visit sequence");
    /// assert!(obs.why_selected(2).is_none(), "the 0 at word index 1 was not selected");
    /// # Ok::<(), qa_base::Error>(())
    /// ```
    pub fn why_selected(&self, pos: u32) -> Option<Explanation> {
        let sel = self.selections.iter().find(|s| s.pos == pos)?;
        let visits = self
            .configs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.pos == pos)
            .map(|(i, c)| Visit {
                step: i as u64,
                state: c.state,
                dir: c.dir,
            })
            .collect();
        let stay = self
            .stays
            .iter()
            .find(|s| s.child == pos && s.state == sel.state)
            .copied();
        Some(Explanation {
            pos,
            state: sel.state,
            sym: sel.sym,
            visits,
            stay,
        })
    }

    /// [`ProvenanceObserver::why_selected`] keyed by a 0-based word index
    /// (string query results are word indices; the tape shifts them by the
    /// left endmarker).
    pub fn why_selected_word(&self, index: usize) -> Option<Explanation> {
        self.why_selected(index as u32 + 1)
    }

    /// Certificates for every selection, in selection-scan order.
    pub fn explanations(&self) -> Vec<Explanation> {
        self.selections
            .iter()
            .filter_map(|s| self.why_selected(s.pos))
            .collect()
    }
}

impl Observer for ProvenanceObserver {
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        if self.configs.len() < self.cap {
            self.configs.push(ConfigEvent { state, pos, dir });
        } else {
            self.truncated = true;
        }
    }

    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        self.selections.push(SelectionEvent { pos, state, sym });
    }

    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        self.stays.push(StayCertificate {
            parent,
            child,
            state,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuilds_certificate_from_event_stream() {
        let mut p = ProvenanceObserver::new();
        p.config(0, 0, 1);
        p.config(0, 1, 1);
        p.config(1, 2, -1);
        p.config(2, 1, -1);
        p.selected(1, 2, 7);
        let e = p.why_selected(1).expect("selected");
        assert_eq!(e.state, 2);
        assert_eq!(e.sym, 7);
        assert_eq!(
            e.visits,
            vec![
                Visit {
                    step: 1,
                    state: 0,
                    dir: 1
                },
                Visit {
                    step: 3,
                    state: 2,
                    dir: -1
                },
            ]
        );
        assert!(e.stay.is_none());
        assert!(p.why_selected(2).is_none(), "visited but not selected");
        assert_eq!(p.selected_positions(), vec![1]);
    }

    #[test]
    fn stay_certificate_attaches_to_matching_selection() {
        let mut p = ProvenanceObserver::new();
        p.stay_assign(0, 3, 5);
        p.config(5, 3, 0);
        p.selected(3, 5, 1);
        let e = p.why_selected(3).unwrap();
        assert_eq!(
            e.stay,
            Some(StayCertificate {
                parent: 0,
                child: 3,
                state: 5
            })
        );
        // a selection whose witnessing state did not come from the stay
        // rule carries no stay certificate
        let mut p = ProvenanceObserver::new();
        p.stay_assign(0, 3, 5);
        p.selected(3, 4, 1);
        assert!(p.why_selected(3).unwrap().stay.is_none());
    }

    #[test]
    fn renderings_contain_the_certificate() {
        let mut p = ProvenanceObserver::new();
        p.config(1, 2, -1);
        p.selected(2, 1, 0);
        let e = p.why_selected(2).unwrap();
        let text = e.render_text();
        assert!(text.contains("position 2 selected"));
        assert!(text.contains("q1"));
        let parsed = qa_obs::json::parse(&e.to_json()).unwrap();
        assert_eq!(
            parsed.get("pos").and_then(qa_obs::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(parsed.get("stay"), Some(&qa_obs::json::Value::Null));
    }

    #[test]
    fn cap_truncates_configs_not_selections() {
        let mut p = ProvenanceObserver::with_capacity(1);
        p.config(0, 0, 1);
        p.config(0, 1, 1);
        p.selected(0, 0, 0);
        assert!(p.truncated());
        assert_eq!(p.why_selected(0).unwrap().visits.len(), 1);
    }
}
