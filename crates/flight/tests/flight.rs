//! Integration tests: the flight recorder against a ground-truth trace,
//! and the watchdog against a deliberately looping machine.

use std::time::Duration;

use qa_base::rng::{Rng, StdRng};
use qa_base::{Alphabet, Error, Symbol};
use qa_flight::{Budget, FlightEvent, FlightRecorder, Watchdog};
use qa_obs::{Counter, RunTrace, Tee};
use qa_twoway::string_qa::example_3_4_qa;
use qa_twoway::{Dir, Tape, TwoDfa, TwoDfaBuilder};

fn random_word(rng: &mut StdRng, len: usize) -> Vec<Symbol> {
    (0..len)
        .map(|_| Symbol::from_index(rng.gen_range(0..2)))
        .collect()
}

/// Property: for any run, the config events retained by a capacity-`cap`
/// flight recorder are exactly the tail of the full configuration sequence
/// recorded by an unbounded [`RunTrace`], and the exact tallies agree.
#[test]
fn recorder_ring_is_the_tail_of_the_full_trace() {
    let alphabet = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&alphabet);
    let mut rng = StdRng::seed_from_u64(20260806);

    for case in 0..40 {
        let len = rng.gen_range(0..60) + 1;
        let word = random_word(&mut rng, len);
        let cap = rng.gen_range(1..=64);

        // One run, two sinks: bounded ring and unbounded ground truth.
        let mut tee = Tee(
            FlightRecorder::with_capacity(cap),
            RunTrace::with_capacity(usize::MAX),
        );
        qa.query_with(&word, &mut tee).expect("run succeeds");
        let (rec, trace) = (tee.0, tee.1);
        assert!(!trace.truncated(), "ground truth must be unbounded");

        // The ring's config events are a suffix of the full sequence.
        let ring_configs: Vec<(u32, u32, i8)> = rec
            .events()
            .filter_map(|ev| match *ev {
                FlightEvent::Config { state, pos, dir } => Some((state, pos, dir)),
                _ => None,
            })
            .collect();
        let full: Vec<(u32, u32, i8)> = trace
            .configs
            .iter()
            .map(|c| (c.state, c.pos, c.dir))
            .collect();
        assert!(
            ring_configs.len() <= full.len(),
            "case {case}: ring retained more configs than exist"
        );
        assert_eq!(
            ring_configs,
            full[full.len() - ring_configs.len()..],
            "case {case} (len {len}, cap {cap}): ring != trace tail"
        );

        // Drop accounting: retained + dropped = total events observed.
        let total_events = rec.len() as u64 + rec.dropped();
        assert!(total_events >= full.len() as u64);

        // Exact tallies agree with the ground truth regardless of drops.
        for c in Counter::ALL {
            assert_eq!(
                rec.counter(c),
                trace.counter(c),
                "case {case}: counter {} diverged",
                c.name()
            );
        }
    }
}

/// A 2DFA that ping-pongs between the right marker and its neighbor
/// forever (same machine as the twodfa loop-detection test).
fn ping_pong() -> TwoDfa {
    let mut b = TwoDfaBuilder::new(1);
    let q = b.add_state();
    let r = b.add_state();
    b.set_initial(q);
    b.set_action(q, Tape::LeftMarker, Dir::Right, q);
    b.set_action_all_symbols(q, Dir::Right, q);
    b.set_action(q, Tape::RightMarker, Dir::Left, r);
    b.set_action_all_symbols(r, Dir::Right, q);
    b.set_action(r, Tape::LeftMarker, Dir::Right, q);
    b.build().unwrap()
}

/// The watchdog turns a nonterminating run into a graceful
/// `Err(RunAborted)` — before the engine's own fuel bound would fire — and
/// the flight recorder's dump names the repeated configuration.
#[test]
fn watchdog_aborts_a_looping_run_with_a_post_mortem() {
    let m = ping_pong();
    // 50 symbols: the head reaches the right marker after ~51 steps and
    // ping-pongs from there, so a 100-step budget (just under the engine's
    // own fuel bound |S|·(|w|+2)+1 = 105) retains ~49 looping configs.
    let word: Vec<Symbol> = vec![Symbol::from_index(0); 50];
    let budget = Budget::steps(100);
    let mut dog = Watchdog::new(FlightRecorder::with_capacity(64), budget);

    let err = m.run_with(&word, &mut dog).expect_err("must abort");
    match err {
        Error::RunAborted {
            what,
            limit,
            actual,
        } => {
            assert_eq!(what, "steps");
            assert_eq!(limit, 100);
            assert!(actual > limit);
        }
        other => panic!("expected RunAborted, got {other:?}"),
    }
    assert_eq!(dog.tripped().map(|a| a.what), Some("steps"));

    let rec = dog.into_inner();
    // The engine records the trip in the counter stream.
    assert_eq!(rec.counter(Counter::BudgetTrips), 1);
    // The retained window is saturated with the ping-pong pair, so the
    // dump names a repeated configuration with a high count.
    let (state, pos, n) = rec.repeated_config().expect("configs retained");
    assert!(n >= 10, "loop evidence too weak: ({state}, {pos}) x{n}");
    let dump = rec.dump();
    assert!(
        dump.contains("most repeated configuration:"),
        "dump must name the loop:\n{dump}"
    );
    assert!(
        dump.contains(&format!("q{state} @ {pos}")),
        "dump must show the hot configuration:\n{dump}"
    );
}

/// A wall-clock budget aborts through the same path with `what = wall_ms`.
#[test]
fn wall_clock_budget_aborts_through_the_engine() {
    let m = ping_pong();
    let word: Vec<Symbol> = vec![Symbol::from_index(0); 100];
    let mut dog = Watchdog::new(
        FlightRecorder::new(),
        Budget::unlimited().with_wall(Duration::ZERO),
    );
    let err = m.run_with(&word, &mut dog).expect_err("must abort");
    assert!(
        matches!(
            err,
            Error::RunAborted {
                what: "wall_ms",
                ..
            }
        ),
        "{err:?}"
    );
}

/// An unlimited watchdog is transparent: the run result and the observed
/// event stream match an unwatched run exactly.
#[test]
fn unlimited_watchdog_is_transparent() {
    let alphabet = Alphabet::from_names(["0", "1"]);
    let qa = example_3_4_qa(&alphabet);
    let word = [
        Symbol::from_index(0),
        Symbol::from_index(1),
        Symbol::from_index(1),
        Symbol::from_index(0),
    ];

    let mut bare = RunTrace::new();
    let plain = qa.query_with(&word, &mut bare).unwrap();

    let mut dog = Watchdog::new(RunTrace::new(), Budget::unlimited());
    let watched = qa.query_with(&word, &mut dog).unwrap();

    assert_eq!(plain, watched);
    let inner = dog.into_inner();
    assert_eq!(bare.configs, inner.configs);
    for c in Counter::ALL {
        assert_eq!(bare.counter(c), inner.counter(c), "{}", c.name());
    }
}
