//! # qa-mesh
//!
//! The mesh coordinator: shard a fleet's job grid over N worker
//! *processes* and federate their telemetry back into one coherent,
//! deterministic observability surface.
//!
//! `qa-par` scaled a fleet across threads; `qa-pulse` gave one process a
//! live ops surface. This crate is the next rung: the coordinator spawns
//! `qa-fleet --serve` workers on loopback, deals jobs round-robin
//! ([`ShardPlan`]), tracks per-job progress over a tiny stdout protocol,
//! polls each worker's `/healthz`/`/readyz` into liveness [`Timeline`]s,
//! and — once a worker reports completion — scrapes its `/metrics`,
//! `/flight`, `/profile` and `/events` endpoints ([`run_mesh`]).
//!
//! Federation rests on one algebraic fact the workspace has been
//! defending since `qa-par`: [`qa_obs::Metrics::merge`] is commutative
//! and associative. Parsing each worker's scrape back into a registry
//! (`qa_pulse::parse_prometheus`) and merging ([`federate_metrics`])
//! therefore yields output **byte-identical across shard counts** — a
//! 1-worker and a 4-worker mesh over the same corpus render the same
//! `metrics.prom`. Wide events extend the invariant per job: worker
//! `/events` tails merge in global job order ([`federate_events`]), so
//! the deterministic fields of the federated `events.jsonl` are also
//! byte-identical across shard counts, and the same inputs assemble into
//! one Chrome trace-event fleet timeline ([`federate_trace`]) with a
//! named process per worker. Profiles and flight dumps federate with
//! worker attribution instead ([`federate_profile`],
//! [`federate_flight`]): every frame and event names the process it came
//! from.
//!
//! Chaos is a first-class input, not an afterthought: a worker that dies
//! mid-batch is reported with its exact in-flight jobs, its shard is
//! reassigned to a fresh worker, and — because workers are only scraped
//! *after* they report completion — the federated metrics remain
//! exactly-once. The run is still marked degraded; see
//! [`coordinator`] for the full discipline.

#![deny(missing_docs)]

pub mod coordinator;
pub mod federate;
pub mod plan;
pub mod timeline;

pub use coordinator::{run_mesh, MeshOptions, MeshOutcome, WorkerReport, WorkerScrape};
pub use federate::{
    federate_events, federate_flight, federate_metrics, federate_profile, federate_trace,
};
pub use plan::ShardPlan;
pub use timeline::{Health, Timeline};
