//! Bottom-up ranked tree automata (Definition 2.6).

use std::collections::HashMap;

use qa_base::Symbol;
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;
use qa_trees::Tree;

/// A deterministic bottom-up ranked tree automaton `(Q, Σ, δ, F)`.
///
/// The transition function maps `(q₁…qₙ, σ)` — the children's states and the
/// node's label — to a state, for `n ≤ m` (the rank). Leaves use the `n = 0`
/// case `δ(σ)`. Missing transitions reject.
///
/// ```
/// use qa_base::Alphabet;
/// use qa_core::ranked::Dbta;
/// use qa_trees::sexpr::from_sexpr;
/// let mut sigma = Alphabet::new();
/// let (and, or, zero, one) = (sigma.intern("AND"), sigma.intern("OR"),
///                             sigma.intern("0"), sigma.intern("1"));
/// let circuit = Dbta::boolean_circuit(&sigma);
/// let t = from_sexpr("(OR (AND 1 0) 1)", &mut sigma).unwrap();
/// assert!(circuit.accepts(&t));
/// let t = from_sexpr("(AND (OR 0 0) 1)", &mut sigma).unwrap();
/// assert!(!circuit.accepts(&t));
/// ```
#[derive(Clone, Debug)]
pub struct Dbta {
    alphabet_len: usize,
    num_states: usize,
    max_rank: usize,
    /// `(children states, label) → state`.
    delta: HashMap<(Vec<StateId>, Symbol), StateId>,
    finals: Vec<bool>,
}

impl Dbta {
    /// An automaton with no states/transitions (rejects everything).
    pub fn new(alphabet_len: usize, max_rank: usize) -> Self {
        Dbta {
            alphabet_len,
            num_states: 0,
            max_rank,
            delta: HashMap::new(),
            finals: Vec::new(),
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.num_states);
        self.num_states += 1;
        self.finals.push(false);
        id
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Maximum rank `m`.
    pub fn max_rank(&self) -> usize {
        self.max_rank
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) {
        self.finals[state.index()] = is_final;
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// Define `δ(children, label) = state` (overwrites).
    pub fn set_transition(&mut self, children: &[StateId], label: Symbol, state: StateId) {
        debug_assert!(children.len() <= self.max_rank);
        self.delta.insert((children.to_vec(), label), state);
    }

    /// Shorthand for the leaf case `δ(σ)`.
    pub fn set_leaf(&mut self, label: Symbol, state: StateId) {
        self.set_transition(&[], label, state);
    }

    /// `δ(children, label)`, if defined.
    pub fn transition(&self, children: &[StateId], label: Symbol) -> Option<StateId> {
        self.delta.get(&(children.to_vec(), label)).copied()
    }

    /// Iterate over all defined transitions, in `(children, label)` order —
    /// deterministic so witness shapes, trimmed/minimized state numbering
    /// and compiled-query layouts are reproducible across runs (the
    /// bench_obs regression gate depends on this; raw `HashMap` order is
    /// per-instance random).
    pub fn transitions(&self) -> impl Iterator<Item = (&[StateId], Symbol, StateId)> + '_ {
        let mut entries: Vec<(&[StateId], Symbol, StateId)> = self
            .delta
            .iter()
            .map(|((c, s), q)| (c.as_slice(), *s, *q))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(b.0).then(a.1.index().cmp(&b.1.index())));
        entries.into_iter()
    }

    /// `δ*(t)`: the state at the root, if every transition is defined.
    /// Iterative (postorder).
    pub fn run(&self, tree: &Tree) -> Option<StateId> {
        let table = self.run_table(tree)?;
        Some(table[tree.root().index()])
    }

    /// [`Dbta::run`] with an [`Observer`] (see [`Dbta::run_table_with`]).
    pub fn run_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Option<StateId> {
        let table = self.run_table_with(tree, obs)?;
        Some(table[tree.root().index()])
    }

    /// The per-node state table `δ*(t_v)`, if the run completes.
    pub fn run_table(&self, tree: &Tree) -> Option<Vec<StateId>> {
        self.run_table_with(tree, &mut NoopObserver)
    }

    /// [`Dbta::run_table`] with an [`Observer`]: each node fold is a
    /// [`Counter::TableLookups`], each defined transition a
    /// [`Counter::Steps`] plus a [`Machine::Dbtar`]
    /// [`Observer::state_visit`] of the reached state and one
    /// [`Observer::transition_fired`] per folded child; the total work is
    /// recorded under [`Series::RunSteps`]. With [`NoopObserver`] this
    /// monomorphizes to exactly `run_table`.
    pub fn run_table_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Option<Vec<StateId>> {
        let mut table: Vec<Option<StateId>> = vec![None; tree.num_nodes()];
        let mut steps = 0u64;
        for v in tree.postorder() {
            let children: Vec<StateId> = tree
                .children(v)
                .iter()
                .map(|c| table[c.index()])
                .collect::<Option<Vec<_>>>()?;
            if children.len() > self.max_rank {
                return None;
            }
            let label = tree.label(v);
            obs.count(Counter::TableLookups, 1);
            let q2 = self.transition(&children, label);
            if let Some(q2) = q2 {
                steps += 1;
                obs.count(Counter::Steps, 1);
                obs.state_visit(Machine::Dbtar, q2.index() as u32, label.index() as u32);
                if obs.is_enabled() {
                    for &c in &children {
                        obs.transition_fired(
                            Machine::Dbtar,
                            c.index() as u32,
                            label.index() as u32,
                            q2.index() as u32,
                        );
                    }
                }
            }
            table[v.index()] = q2;
            table[v.index()]?;
        }
        obs.record(Series::RunSteps, steps);
        table.into_iter().collect()
    }

    /// Whether the automaton accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> bool {
        self.run(tree).is_some_and(|q| self.is_final(q))
    }

    /// Example 4.2's one-way core: evaluate Boolean circuits over
    /// `{AND, OR, 0, 1}` and accept those evaluating to 1. States: 0, 1.
    ///
    /// The alphabet must contain symbols named `AND`, `OR`, `0`, `1`.
    pub fn boolean_circuit(alphabet: &qa_base::Alphabet) -> Dbta {
        let and = alphabet.symbol("AND");
        let or = alphabet.symbol("OR");
        let zero = alphabet.symbol("0");
        let one = alphabet.symbol("1");
        let mut b = Dbta::new(alphabet.len(), 2);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_final(q1, true);
        b.set_leaf(zero, q0);
        b.set_leaf(one, q1);
        for (x, qx) in [(false, q0), (true, q1)] {
            for (y, qy) in [(false, q0), (true, q1)] {
                b.set_transition(&[qx, qy], and, if x && y { q1 } else { q0 });
                b.set_transition(&[qx, qy], or, if x || y { q1 } else { q0 });
            }
        }
        b
    }
}

/// A nondeterministic bottom-up ranked tree automaton.
///
/// `δ(q₁…qₙ, σ)` is a *set* of states. Acceptance via the standard
/// reachable-state-sets computation (no backtracking).
#[derive(Clone, Debug)]
pub struct Nbta {
    alphabet_len: usize,
    num_states: usize,
    max_rank: usize,
    delta: HashMap<(Vec<StateId>, Symbol), Vec<StateId>>,
    finals: Vec<bool>,
}

impl Nbta {
    /// An automaton with no states/transitions (rejects everything).
    pub fn new(alphabet_len: usize, max_rank: usize) -> Self {
        Nbta {
            alphabet_len,
            num_states: 0,
            max_rank,
            delta: HashMap::new(),
            finals: Vec::new(),
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.num_states);
        self.num_states += 1;
        self.finals.push(false);
        id
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Maximum rank.
    pub fn max_rank(&self) -> usize {
        self.max_rank
    }

    /// Mark `state` final.
    pub fn set_final(&mut self, state: StateId, is_final: bool) {
        self.finals[state.index()] = is_final;
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals[state.index()]
    }

    /// Add `state` to `δ(children, label)`.
    pub fn add_transition(&mut self, children: &[StateId], label: Symbol, state: StateId) {
        debug_assert!(children.len() <= self.max_rank);
        let entry = self.delta.entry((children.to_vec(), label)).or_default();
        if !entry.contains(&state) {
            entry.push(state);
        }
    }

    /// The target set of `δ(children, label)`.
    pub fn targets(&self, children: &[StateId], label: Symbol) -> &[StateId] {
        self.delta
            .get(&(children.to_vec(), label))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterate over all transitions.
    pub fn transitions(&self) -> impl Iterator<Item = (&[StateId], Symbol, &[StateId])> + '_ {
        self.delta
            .iter()
            .map(|((c, s), qs)| (c.as_slice(), *s, qs.as_slice()))
    }

    /// `δ*(t)`: the set of states reachable at the root (sorted).
    pub fn run(&self, tree: &Tree) -> Vec<StateId> {
        self.run_with(tree, &mut NoopObserver)
    }

    /// [`Nbta::run`] with an [`Observer`]: each children-tuple lookup is a
    /// [`Counter::TableLookups`], each fresh state reached at a node a
    /// [`Counter::Steps`] plus a [`Machine::Dbtar`]
    /// [`Observer::state_visit`]. With [`NoopObserver`] this monomorphizes
    /// to exactly `run`.
    pub fn run_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Vec<StateId> {
        let mut table: Vec<Vec<StateId>> = vec![Vec::new(); tree.num_nodes()];
        for v in tree.postorder() {
            let kids = tree.children(v);
            if kids.len() > self.max_rank {
                continue; // no transition possible: empty state set
            }
            let label = tree.label(v);
            let mut acc: Vec<StateId> = Vec::new();
            // enumerate tuples from the children's state sets
            let mut tuple: Vec<usize> = vec![0; kids.len()];
            'outer: loop {
                let mut children_states = Vec::with_capacity(kids.len());
                let mut ok = true;
                for (i, &c) in kids.iter().enumerate() {
                    let set = &table[c.index()];
                    if set.is_empty() {
                        ok = false;
                        break;
                    }
                    children_states.push(set[tuple[i]]);
                }
                if !ok {
                    break;
                }
                obs.count(Counter::TableLookups, 1);
                for &q in self.targets(&children_states, label) {
                    if !acc.contains(&q) {
                        acc.push(q);
                        obs.count(Counter::Steps, 1);
                        obs.state_visit(Machine::Dbtar, q.index() as u32, label.index() as u32);
                    }
                }
                // next tuple
                let mut i = 0;
                loop {
                    if i == kids.len() {
                        break 'outer;
                    }
                    tuple[i] += 1;
                    if tuple[i] < table[kids[i].index()].len() {
                        break;
                    }
                    tuple[i] = 0;
                    i += 1;
                }
            }
            acc.sort_unstable();
            table[v.index()] = acc;
        }
        table[tree.root().index()].clone()
    }

    /// Whether the automaton accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> bool {
        self.run(tree).iter().any(|&q| self.is_final(q))
    }
}

impl From<&Dbta> for Nbta {
    fn from(d: &Dbta) -> Nbta {
        let mut n = Nbta::new(d.alphabet_len(), d.max_rank());
        for _ in 0..d.num_states() {
            n.add_state();
        }
        for (children, label, q) in d.transitions() {
            n.add_transition(children, label, q);
        }
        for i in 0..d.num_states() {
            let s = StateId::from_index(i);
            n.set_final(s, d.is_final(s));
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    fn circuit_alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    #[test]
    fn transitions_iterate_in_sorted_order() {
        // `transitions()` feeds witness assembly, trim/minimize numbering
        // and MSO compilation; its order must not depend on HashMap state.
        let a = circuit_alpha();
        let b = Dbta::boolean_circuit(&a);
        let keys: Vec<(Vec<StateId>, Symbol)> =
            b.transitions().map(|(c, s, _)| (c.to_vec(), s)).collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.index().cmp(&y.1.index())));
        assert_eq!(keys, sorted, "transitions() must yield sorted entries");
        assert!(!keys.is_empty());

        // Two identically built machines agree entry-for-entry, which a raw
        // HashMap iteration (per-instance RandomState) does not guarantee.
        let b2 = Dbta::boolean_circuit(&a);
        let keys2: Vec<(Vec<StateId>, Symbol)> =
            b2.transitions().map(|(c, s, _)| (c.to_vec(), s)).collect();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn boolean_circuit_evaluation() {
        let mut a = circuit_alpha();
        let b = Dbta::boolean_circuit(&a);
        for (s, val) in [
            ("1", true),
            ("0", false),
            ("(AND 1 1)", true),
            ("(AND 1 0)", false),
            ("(OR 0 0)", false),
            ("(OR (AND 1 1) 0)", true),
            ("(AND (OR 0 1) (OR 1 0))", true),
            ("(AND (OR 0 1) (AND 1 0))", false),
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(b.accepts(&t), val, "{s}");
        }
    }

    #[test]
    fn missing_transition_rejects() {
        let mut a = circuit_alpha();
        let b = Dbta::boolean_circuit(&a);
        // a unary AND node has no transition
        let t = from_sexpr("(AND 1)", &mut a).unwrap();
        assert_eq!(b.run(&t), None);
        assert!(!b.accepts(&t));
        // rank exceeded
        let t = from_sexpr("(AND 1 1 1)", &mut a).unwrap();
        assert!(!b.accepts(&t));
    }

    #[test]
    fn run_table_exposes_subtree_states() {
        let mut a = circuit_alpha();
        let b = Dbta::boolean_circuit(&a);
        let t = from_sexpr("(OR (AND 1 0) 1)", &mut a).unwrap();
        let table = b.run_table(&t).unwrap();
        let and_node = t.child(t.root(), 0);
        assert_eq!(table[and_node.index()], StateId::from_index(0)); // evaluates to 0
        assert_eq!(table[t.root().index()], StateId::from_index(1));
    }

    #[test]
    fn nbta_from_dbta_agrees() {
        let mut a = circuit_alpha();
        let d = Dbta::boolean_circuit(&a);
        let n = Nbta::from(&d);
        for s in ["1", "(AND 1 0)", "(OR (AND 1 1) 0)", "(AND 1)"] {
            let t = from_sexpr(s, &mut a).unwrap();
            assert_eq!(d.accepts(&t), n.accepts(&t), "{s}");
        }
    }

    #[test]
    fn nbta_genuine_nondeterminism() {
        // Accepts unary chains over {a} whose height is >= 1, by guessing at
        // the leaf whether the chain is even or odd and verifying at the root.
        let mut a = Alphabet::new();
        let sym = a.intern("a");
        let mut n = Nbta::new(1, 1);
        let even = n.add_state();
        let odd = n.add_state();
        n.set_final(odd, true);
        n.add_transition(&[], sym, even); // leaf counts as height 0: even
        n.add_transition(&[even], sym, odd);
        n.add_transition(&[odd], sym, even);
        let mut t = qa_trees::Tree::leaf(sym);
        let mut cur = t.root();
        assert!(!n.accepts(&t)); // height 0
        for h in 1..=5 {
            cur = t.add_child(cur, sym);
            assert_eq!(n.accepts(&t), h % 2 == 1, "height {h}");
        }
    }
}
