//! End-to-end tests of `qa-fleet --mesh`: federated metrics byte-identity
//! across shard counts, worker shard mode by hand, and the chaos drill —
//! SIGKILL a worker mid-batch, assert reassignment, the post-mortem, exit
//! code 1, and exactly-once federated metrics.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qa_fleet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args(args)
        .output()
        .expect("spawn qa-fleet")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

/// Drop the `qa_heap_*` gauge lines from a Prometheus export (live
/// process state under `--features alloc-count`; absent, and this the
/// identity, in the default build).
fn without_heap_gauges(prom: &str) -> String {
    prom.lines()
        .filter(|l| !l.contains("qa_heap_"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn read(dir: &str, name: &str) -> String {
    let path = PathBuf::from(dir).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

const CORPUS: &[&str] = &[
    "--queries",
    "4",
    "--docs",
    "4",
    "--size",
    "48",
    "--seed",
    "7",
];

#[test]
fn federated_metrics_are_byte_identical_across_shard_counts() {
    let mut exports = Vec::new();
    for shards in ["1", "2", "4"] {
        let dir = tmp(&format!("mesh-ident-{shards}"));
        let out = qa_fleet(&[CORPUS, &["--mesh", shards, "--out-dir", &dir]].concat());
        assert!(
            out.status.success(),
            "mesh {shards} failed\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        exports.push((shards, without_heap_gauges(&read(&dir, "metrics.prom"))));
    }
    let (_, baseline) = &exports[0];
    assert!(baseline.contains("qa_fleet_steps_total"), "{baseline}");
    for (shards, prom) in &exports[1..] {
        assert_eq!(
            prom, baseline,
            "metrics.prom for --mesh {shards} diverged from --mesh 1"
        );
    }
}

#[test]
fn mesh_writes_federated_profile_flight_and_summary() {
    let dir = tmp("mesh-artifacts");
    let out = qa_fleet(&[CORPUS, &["--mesh", "2", "--out-dir", &dir]].concat());
    assert!(out.status.success());

    // Every profile frame is attributed to a worker.
    let profile = read(&dir, "profile.folded");
    assert!(!profile.is_empty());
    for line in profile.lines() {
        assert!(
            line.starts_with("w0;") || line.starts_with("w1;"),
            "unattributed frame: {line}"
        );
    }

    // The flight document nests correlation-stamped worker dumps.
    let flight = read(&dir, "flight.json");
    assert!(
        flight.starts_with("{\"run_id\":\"fleet-s7-q4x4-z48\""),
        "{flight}"
    );
    assert!(flight.contains("\"worker\":\"w0\""), "{flight}");
    assert!(flight.contains("\"worker\":\"w1\""), "{flight}");

    // The summary tables both workers and reports a clean run.
    let summary = read(&dir, "summary.txt");
    assert!(
        summary.contains("qa-mesh run fleet-s7-q4x4-z48"),
        "{summary}"
    );
    assert!(summary.contains("w0"), "{summary}");
    assert!(summary.contains("w1"), "{summary}");
    assert!(summary.contains("degraded: no"), "{summary}");
    assert!(
        !PathBuf::from(&dir).join("postmortem.txt").exists(),
        "clean mesh must not leave a post-mortem"
    );

    // Workers left their own artifacts in per-worker directories, each
    // carrying its identity as an info gauge.
    let w0 = read(&format!("{dir}/w0"), "metrics.prom");
    assert!(
        w0.contains(
            "qa_fleet_worker_info{run_id=\"fleet-s7-q4x4-z48\",shard=\"0/2\",worker=\"w0\"} 1"
        ),
        "{w0}"
    );
}

#[test]
fn a_shard_worker_by_hand_runs_only_its_slice() {
    let dir = tmp("mesh-hand-shard");
    let out = qa_fleet(&[CORPUS, &["--shard", "1/4", "--out-dir", &dir]].concat());
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 16 jobs round-robin over 4 shards → shard 1 owns jobs 1,5,9,13.
    assert!(stdout.contains("qa-fleet: 4 run(s)"), "{stdout}");
    for line in [
        "fleet: job 1 ",
        "fleet: job 5 ",
        "fleet: job 9 ",
        "fleet: job 13 ",
    ] {
        assert!(stdout.contains(line), "missing {line:?} in {stdout}");
    }
    assert!(!stdout.contains("fleet: job 0 "), "{stdout}");
    let summary = read(&dir, "summary.txt");
    assert!(summary.contains("shard 1/4"), "{summary}");
}

#[test]
fn chaos_kill_reassigns_the_shard_and_degrades_the_run() {
    // A clean 3-worker mesh and one whose shard-1 worker is SIGKILLed
    // mid-batch must federate byte-identical metrics: dead workers are
    // never scraped, and the replacement re-runs the whole shard.
    let clean_dir = tmp("mesh-chaos-clean");
    let clean = qa_fleet(
        &[
            CORPUS,
            &["--mesh", "3", "--pace-ms", "40", "--out-dir", &clean_dir],
        ]
        .concat(),
    );
    assert!(clean.status.success());

    let chaos_dir = tmp("mesh-chaos-kill");
    let chaos = qa_fleet(
        &[
            CORPUS,
            &[
                "--mesh",
                "3",
                "--pace-ms",
                "40",
                "--chaos-kill",
                "1",
                "--out-dir",
                &chaos_dir,
            ],
        ]
        .concat(),
    );
    let stdout = String::from_utf8_lossy(&chaos.stdout);
    let stderr = String::from_utf8_lossy(&chaos.stderr);

    // Satellite guarantee: reassignment succeeded, but a worker died, so
    // the coordinator exits non-zero (degraded).
    assert_eq!(
        chaos.status.code(),
        Some(1),
        "stdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("degraded: yes"), "{stdout}");
    assert!(
        stdout.contains("w1r1"),
        "no replacement in summary: {stdout}"
    );
    assert!(
        stdout.contains("worker w1 chaos-killed mid-batch"),
        "{stdout}"
    );

    // The post-mortem names the dead worker and its exact lost jobs
    // (shard 1 of 3 over 16 jobs owns 1, 4, 7, 10, 13).
    let postmortem = read(&chaos_dir, "postmortem.txt");
    assert!(
        postmortem.contains("worker w1 (shard 1/3) died before completing its shard"),
        "{postmortem}"
    );
    assert!(postmortem.contains("chaos-killed: true"), "{postmortem}");
    assert!(
        postmortem.contains("assigned 5 job(s): [1, 4, 7, 10, 13]"),
        "{postmortem}"
    );
    assert!(postmortem.contains("in flight at death"), "{postmortem}");
    assert!(
        postmortem.contains("shard reassigned to w1r1"),
        "{postmortem}"
    );

    // Exactly-once federation: chaos run == clean run, byte for byte.
    assert_eq!(
        without_heap_gauges(&read(&chaos_dir, "metrics.prom")),
        without_heap_gauges(&read(&clean_dir, "metrics.prom")),
        "chaos must not change the federated metrics"
    );
}

#[test]
fn chaos_kill_without_mesh_is_a_usage_error() {
    let out = qa_fleet(&["--chaos-kill", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chaos-kill requires --mesh"),);
}
