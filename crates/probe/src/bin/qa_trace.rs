//! `qa-trace`: record, replay, explain, diff, and export instrumented runs.
//!
//! ```text
//! qa-trace record <workload> [input] [--out FILE] [--metrics-out FILE]
//! qa-trace replay <trace.json>
//! qa-trace why <workload> [input] [--pos P] [--json]
//! qa-trace explain <workload> [input] [--json] [--collapsed] [--scope-out FILE]
//! qa-trace diff <a.json> <b.json>
//! qa-trace export chrome <trace.json> [--out FILE]
//! qa-trace export prom <metrics.json> [--out FILE]
//! qa-trace analyze top    <events.jsonl> [--k K] [--json] [--out FILE]
//! qa-trace analyze top    <scope.json> --by state [--k K] [--json] [--out FILE]
//! qa-trace analyze slow   <events.jsonl> [--k K] [--json] [--out FILE]
//! qa-trace analyze growth <events.jsonl> [--json] [--out FILE]
//! qa-trace analyze slo    <events.jsonl> --rules FILE [--json] [--out FILE]
//! ```
//!
//! `explain` is EXPLAIN ANALYZE for a workload run: it executes the
//! workload with a `qa-scope` profiler attached and prints the per-state
//! profile — hot/cold/dead states, the state×symbol transition heatmap,
//! per-phase transition counts, per-state cache attribution — as text,
//! JSON (`--json`), or a flamegraph-ready collapsed stack
//! (`--collapsed`). `--scope-out FILE` additionally writes the raw
//! profile in `scope.json` form, which `analyze top --by state` reads.
//!
//! `analyze` reads a `qa-fleet` wide-event log (`events.jsonl`) and
//! reports heavy hitters (`top`), per-query percentile outliers (`slow`),
//! or per-query steps-vs-size growth fits (`growth` — feed it a
//! `qa-fleet --sweep` log so document sizes vary). `analyze top --by
//! state` reads a `scope.json` (from `qa-fleet --scope`, `--scope-out`
//! here, or a serve daemon's `/explain`) instead and ranks individual
//! automaton states by visit count. `analyze slo` replays
//! the log through the `qa-sentinel` alert engine offline — one logical
//! tick per job, in job order, exactly like `qa-fleet --slo` — printing
//! the deterministic transition log; it exits 1 when any alert is still
//! firing after the last job, so the fleet's alerting verdict can be
//! re-derived (or a new rules file trialled) from an archived log alone.
//!
//! Workloads are the paper's running examples, deterministic by
//! construction so two invocations on the same input produce byte-identical
//! traces:
//!
//! - `example-3-4 [word]` — Example 3.4 string QA ("select every 1 at an
//!   odd position from the right"), default word `0110`.
//! - `example-3-4-variant [word]` — the same machine with one transition
//!   changed (the first left move enters the *even* parity state), for
//!   exercising `diff`.
//! - `example-4-4 [sexpr]` — Example 4.4 ranked circuit QA, default
//!   `(OR (AND 1 0) 1)`.
//! - `example-5-14 [sexpr]` — Example 5.14 strong unranked QA with stay
//!   transitions, default `(0 1 0 0 1 0)`.
//! - `fig5` — the Figure 5 two-pass ranked unary MSO evaluation.

use std::process::ExitCode;

use qa_base::Alphabet;
use qa_obs::json::Value;
use qa_obs::{Metrics, RunTrace, Tee};
use qa_probe::export::parse_json;
use qa_probe::{
    chrome_from_trace_json, counter_drift, first_divergence, prometheus_from_metrics_json,
    ProvenanceObserver,
};

const USAGE: &str = "usage:
  qa-trace record <workload> [input] [--out FILE] [--metrics-out FILE]
  qa-trace replay <trace.json>
  qa-trace why <workload> [input] [--pos P] [--json]
  qa-trace explain <workload> [input] [--json] [--collapsed] [--scope-out FILE]
  qa-trace diff <a.json> <b.json>
  qa-trace export chrome <trace.json> [--out FILE]
  qa-trace export prom <metrics.json> [--out FILE]
  qa-trace analyze top    <events.jsonl> [--k K] [--json] [--out FILE]
  qa-trace analyze top    <scope.json> --by state [--k K] [--json] [--out FILE]
  qa-trace analyze slow   <events.jsonl> [--k K] [--json] [--out FILE]
  qa-trace analyze growth <events.jsonl> [--json] [--out FILE]
  qa-trace analyze slo    <events.jsonl> --rules FILE [--json] [--out FILE]

workloads: example-3-4, example-3-4-variant, example-4-4, example-5-14, fig5";

/// One recorded workload run: full trace, metrics, provenance, per-state
/// profile, results.
struct Recorded {
    trace: RunTrace,
    metrics: Metrics,
    prov: ProvenanceObserver,
    /// Per-state execution profile (`qa-trace explain`).
    scope: qa_scope::ScopeProfiler,
    /// Selected positions in the workload's result coordinates (word
    /// indices for strings, node indices for trees).
    selected: Vec<usize>,
    /// Whether results are word indices (tape position − 1).
    word_coords: bool,
}

/// Example 3.4 with the first left move rewired into the even-parity state
/// — selects 1s at *even* positions from the right, so its trace diverges
/// from the original exactly one step after the head reaches `⊲`.
fn example_3_4_variant(alphabet: &Alphabet) -> qa_twoway::StringQa {
    use qa_twoway::{Dir, Tape, TwoDfaBuilder};
    let one = alphabet.symbol("1");
    let mut b = TwoDfaBuilder::new(alphabet.len());
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.set_initial(s0);
    b.set_final(s1, true);
    b.set_final(s2, true);
    b.set_action(s0, Tape::LeftMarker, Dir::Right, s0);
    b.set_action_all_symbols(s0, Dir::Right, s0);
    b.set_action(s0, Tape::RightMarker, Dir::Left, s2); // original enters s1
    b.set_action_all_symbols(s1, Dir::Left, s2);
    b.set_action_all_symbols(s2, Dir::Left, s1);
    let mut qa = qa_twoway::StringQa::new(b.build().expect("valid machine"));
    qa.set_selecting(s1, one, true);
    qa
}

fn run_workload(name: &str, input: Option<&str>) -> Result<Recorded, String> {
    let mut trace = RunTrace::new();
    let metrics = Metrics::new();
    let mut prov = ProvenanceObserver::new();
    let mut scope = qa_scope::ScopeProfiler::new();
    let mut word_coords = false;
    let selected: Vec<usize> = {
        let mut obs = Tee(
            &mut trace,
            Tee(metrics.observer(), Tee(&mut prov, &mut scope)),
        );
        match name {
            "example-3-4" | "example-3-4-variant" => {
                word_coords = true;
                let a = Alphabet::from_names(["0", "1"]);
                let text = input.unwrap_or("0110");
                if text.chars().any(|c| c != '0' && c != '1') {
                    return Err(format!("word must be over {{0,1}}, got {text:?}"));
                }
                let word = a.word(text);
                let qa = if name == "example-3-4" {
                    qa_twoway::string_qa::example_3_4_qa(&a)
                } else {
                    example_3_4_variant(&a)
                };
                qa.query_with(&word, &mut obs).map_err(|e| e.to_string())?
            }
            "example-4-4" => {
                let mut a = Alphabet::from_names(["AND", "OR", "0", "1"]);
                let t = qa_trees::sexpr::from_sexpr(input.unwrap_or("(OR (AND 1 0) 1)"), &mut a)
                    .map_err(|e| e.to_string())?;
                let qa = qa_core::ranked::query::example_4_4(&a);
                qa.query_with(&t, &mut obs)
                    .map_err(|e| e.to_string())?
                    .into_iter()
                    .map(|n| n.index())
                    .collect()
            }
            "example-5-14" => {
                let mut a = Alphabet::from_names(["0", "1"]);
                let t = qa_trees::sexpr::from_sexpr(input.unwrap_or("(0 1 0 0 1 0)"), &mut a)
                    .map_err(|e| e.to_string())?;
                let qa = qa_core::unranked::query::example_5_14(&a);
                qa.query_with(&t, &mut obs)
                    .map_err(|e| e.to_string())?
                    .into_iter()
                    .map(|n| n.index())
                    .collect()
            }
            "fig5" => {
                let mut a = Alphabet::from_names(["s", "t"]);
                let phi = qa_mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a)
                    .map_err(|e| e.to_string())?;
                let d = qa_mso::compile_ranked::compile_unary(&phi, "v", 2, 2)
                    .map_err(|e| e.to_string())?;
                let t = qa_trees::generate::complete(a.symbol("s"), 2, 4);
                qa_mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut obs)
                    .into_iter()
                    .map(|n| n.index())
                    .collect()
            }
            other => return Err(format!("unknown workload `{other}` — {USAGE}")),
        }
    };
    Ok(Recorded {
        trace,
        metrics,
        prov,
        scope,
        selected,
        word_coords,
    })
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn emit(out: Option<&str>, content: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// Pull `--flag VALUE` out of `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        Some(_) => Err(format!("{flag} needs a value")),
        None => Ok(None),
    }
}

fn cmd_record(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out = take_flag(&mut args, "--out")?;
    let metrics_out = take_flag(&mut args, "--metrics-out")?;
    let workload = args.first().ok_or(USAGE)?;
    let rec = run_workload(workload, args.get(1).map(String::as_str))?;
    eprintln!(
        "{workload}: {} configs, selected {:?}",
        rec.trace.configs.len(),
        rec.selected
    );
    emit(out.as_deref(), &format!("{}\n", rec.trace.to_json()))?;
    if let Some(path) = metrics_out {
        emit(Some(&path), &format!("{}\n", rec.metrics.to_json()))?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: Vec<String>) -> Result<ExitCode, String> {
    let path = args.first().ok_or(USAGE)?;
    let v = read_json(path)?;
    let configs = v
        .get("configs")
        .and_then(Value::as_arr)
        .ok_or("trace has no \"configs\" array")?;
    for (i, c) in configs.iter().enumerate() {
        let state = c.get("state").and_then(Value::as_u64).unwrap_or(0);
        let pos = c.get("pos").and_then(Value::as_u64).unwrap_or(0);
        let dir = c.get("dir").and_then(Value::as_f64).unwrap_or(0.0);
        let arrow = if dir < 0.0 {
            "<-"
        } else if dir > 0.0 {
            "->"
        } else {
            "--"
        };
        println!("{i:4}  q{state} @ {pos} {arrow}");
    }
    if v.get("truncated") == Some(&Value::Bool(true)) {
        println!("      ... (truncated)");
    }
    if let Some(counters) = v.get("counters").and_then(Value::as_obj) {
        for (k, n) in counters {
            if let Some(n) = n.as_u64() {
                println!("{k}: {n}");
            }
        }
    }
    if let Some(phases) = v.get("phases").and_then(Value::as_arr) {
        for p in phases {
            let name = p.get("name").and_then(Value::as_str).unwrap_or("?");
            let depth = p.get("depth").and_then(Value::as_u64).unwrap_or(0) as usize;
            let ms = p.get("ms").and_then(Value::as_f64).unwrap_or(0.0);
            println!("{}[{name}] {ms:.3} ms", "  ".repeat(depth));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_why(mut args: Vec<String>) -> Result<ExitCode, String> {
    let pos = take_flag(&mut args, "--pos")?
        .map(|p| p.parse::<u32>().map_err(|_| format!("bad --pos `{p}`")))
        .transpose()?;
    let json = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let workload = args.first().ok_or(USAGE)?;
    let rec = run_workload(workload, args.get(1).map(String::as_str))?;
    let explanations = match pos {
        Some(p) => match rec.prov.why_selected(p) {
            Some(e) => vec![e],
            None => {
                eprintln!("position {p} was not selected");
                return Ok(ExitCode::FAILURE);
            }
        },
        None => rec.prov.explanations(),
    };
    if explanations.is_empty() {
        println!("no positions selected");
        return Ok(ExitCode::SUCCESS);
    }
    for e in &explanations {
        if json {
            println!("{}", e.to_json());
        } else {
            if rec.word_coords && e.pos > 0 {
                println!("(word index {})", e.pos - 1);
            }
            print!("{}", e.render_text());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_explain(mut args: Vec<String>) -> Result<ExitCode, String> {
    let scope_out = take_flag(&mut args, "--scope-out")?;
    let json = take_switch(&mut args, "--json");
    let collapsed = take_switch(&mut args, "--collapsed");
    let workload = args.first().ok_or(USAGE)?;
    let rec = run_workload(workload, args.get(1).map(String::as_str))?;
    eprintln!(
        "{workload}: {} steps, selected {:?}",
        rec.metrics.get(qa_obs::Counter::Steps),
        rec.selected
    );
    if let Some(path) = scope_out {
        emit(Some(&path), &format!("{}\n", rec.scope.to_json()))?;
    }
    let content = if collapsed {
        rec.scope.to_collapsed()
    } else if json {
        format!("{}\n", rec.scope.explain_run().to_json())
    } else {
        rec.scope.explain_run().render_text()
    };
    print!("{content}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: Vec<String>) -> Result<ExitCode, String> {
    let (pa, pb) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(USAGE.to_string()),
    };
    let (a, b) = (read_json(pa)?, read_json(pb)?);
    let mut diverged = false;
    match first_divergence(&a, &b)? {
        None => println!("configs: identical"),
        Some(d) => {
            diverged = true;
            let show = |c: &Option<qa_obs::TraceConfig>| match c {
                Some(c) => format!("q{} @ {} dir {}", c.state, c.pos, c.dir),
                None => "(run ended)".to_string(),
            };
            println!("configs: first divergence at step {}", d.index);
            println!("  {pa}: {}", show(&d.a));
            println!("  {pb}: {}", show(&d.b));
        }
    }
    let drift = counter_drift(&a, &b);
    for (k, va, vb) in &drift {
        diverged = true;
        println!("counter {k}: {va} vs {vb}");
    }
    Ok(if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_export(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out = take_flag(&mut args, "--out")?;
    let (format, path) = match (args.first(), args.get(1)) {
        (Some(f), Some(p)) => (f.as_str(), p),
        _ => return Err(USAGE.to_string()),
    };
    let v = read_json(path)?;
    let content = match format {
        "chrome" => format!("{}\n", chrome_from_trace_json(&v)?),
        "prom" => prometheus_from_metrics_json(&v, "qa")?,
        other => return Err(format!("unknown export format `{other}` — {USAGE}")),
    };
    emit(out.as_deref(), &content)?;
    Ok(ExitCode::SUCCESS)
}

/// Pull a bare `--flag` (no value) out of `args`, returning presence.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn cmd_analyze(mut args: Vec<String>) -> Result<ExitCode, String> {
    let out = take_flag(&mut args, "--out")?;
    let json = take_switch(&mut args, "--json");
    let k = take_flag(&mut args, "--k")?
        .map(|k| k.parse::<usize>().map_err(|_| format!("bad --k `{k}`")))
        .transpose()?
        .unwrap_or(10);
    let rules_path = take_flag(&mut args, "--rules")?;
    let by = take_flag(&mut args, "--by")?;
    let (report, path) = match (args.first(), args.get(1)) {
        (Some(r), Some(p)) => (r.as_str(), p),
        _ => return Err(USAGE.to_string()),
    };
    match by.as_deref() {
        Some("state") if report == "top" => {
            // --by state reads a scope.json profile, not an event log.
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let scope =
                qa_scope::ScopeProfiler::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            let r = qa_probe::analyze::top_states(&scope, k);
            let content = if json {
                format!("{}\n", r.to_json())
            } else {
                r.render_text()
            };
            emit(out.as_deref(), &content)?;
            return Ok(ExitCode::SUCCESS);
        }
        Some("state") => return Err(format!("--by state only applies to `top` — {USAGE}")),
        Some(other) => return Err(format!("unknown --by dimension `{other}` — {USAGE}")),
        None => {}
    }
    let jsonl = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rows = qa_probe::analyze::parse_rows(&jsonl).map_err(|e| format!("{path}: {e}"))?;
    let mut slo_firing = false;
    let content = match report {
        "top" => {
            let r = qa_probe::analyze::top(&rows, k);
            if json {
                format!("{}\n", r.to_json())
            } else {
                r.render_text()
            }
        }
        "slow" => {
            let r = qa_probe::analyze::slow(&rows, k);
            if json {
                format!("{}\n", r.to_json())
            } else {
                r.render_text()
            }
        }
        "growth" => {
            let r = qa_probe::analyze::growth(&rows);
            if json {
                format!("{}\n", r.to_json())
            } else {
                r.render_text()
            }
        }
        "slo" => {
            let rules_path = rules_path.ok_or("analyze slo needs --rules FILE")?;
            let text =
                std::fs::read_to_string(&rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
            let rules =
                qa_sentinel::parse_rules(&text).map_err(|e| format!("{rules_path}: {e}"))?;
            // Replay in global job order, whatever order the log arrived
            // in (a scraped /events tail is completion-ordered): the
            // replay must match the fleet's own byte for byte.
            rows.sort_by_key(|r| r.job);
            let mut replay = qa_sentinel::Replay::new(rules, "qa_fleet");
            for r in &rows {
                replay.observe_job(&qa_sentinel::JobStats {
                    steps: r.steps,
                    reversals: r.reversals,
                    cache_hits: r.cache_hits,
                    cache_misses: r.cache_misses,
                    budget_trips: r.budget_trips,
                });
            }
            let firing = replay.engine().firing();
            slo_firing = !firing.is_empty();
            if json {
                format!(
                    "{}\n",
                    qa_obs::json::object(|w| {
                        w.field_u64("ticks", replay.tick());
                        w.field_raw("alerts", &replay.engine().to_json());
                    })
                )
            } else {
                use std::fmt::Write;
                let mut text = String::new();
                let _ = writeln!(
                    text,
                    "slo replay: {} job(s), {} alert(s) firing at end",
                    replay.tick(),
                    firing.len()
                );
                text.push_str(&replay.engine().render_log());
                for name in &firing {
                    let _ = writeln!(text, "firing: {name}");
                }
                text
            }
        }
        other => return Err(format!("unknown analyze report `{other}` — {USAGE}")),
    };
    emit(out.as_deref(), &content)?;
    Ok(if slo_firing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "record" => cmd_record(args),
        "replay" => cmd_replay(args),
        "why" => cmd_why(args),
        "explain" => cmd_explain(args),
        "diff" => cmd_diff(args),
        "export" => cmd_export(args),
        "analyze" => cmd_analyze(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("qa-trace: {msg}");
            ExitCode::from(2)
        }
    }
}
