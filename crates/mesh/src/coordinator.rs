//! The mesh coordinator: spawn worker processes, track their job
//! progress over the stdout protocol, poll their pulse endpoints, scrape
//! them when they finish (and, with a sentinel attached, mid-run on a
//! wall-clock cadence), and survive their deaths.
//!
//! The coordinator is deliberately generic over *what* it spawns: it
//! takes a closure building a [`Command`] for `(shard, worker_id)` and
//! only assumes the worker speaks the fleet protocol —
//!
//! ```text
//! pulse: serving on <addr>     once the worker's HTTP server is up
//! fleet: job <g> start         before running global job g
//! fleet: job <g> done          after finishing global job g
//! pulse: run complete          once every artifact is on disk
//! ```
//!
//! — and answers `/healthz`, `/readyz`, `/metrics`, `/flight`,
//! `/profile` and `/quit` on the announced address. (`qa-fleet --shard`
//! is the production worker; the tests in `qa-flight` exercise the real
//! binary.)
//!
//! **Chaos discipline.** A worker that exits before printing
//! `pulse: run complete` is *dead*; the coordinator records a
//! post-mortem-ready [`WorkerReport`] naming every job that was in
//! flight, then respawns the whole shard under a fresh worker id. Metrics
//! stay exactly-once under this policy because workers are only ever
//! scraped *after* `run complete`: a dead worker contributes nothing to
//! the federated registry, and its replacement re-runs the shard from
//! scratch. The run is still marked *degraded* ([`MeshOutcome::degraded`])
//! — reassignment repairs the data, not the incident.

use std::collections::BTreeSet;
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qa_obs::{Counter, Metrics};
use qa_pulse::{http_get, http_get_retry, parse_prometheus, HttpTimeouts, RetryPolicy};
use qa_sentinel::SharedSentinel;

use crate::plan::ShardPlan;
use crate::timeline::{Health, Timeline};

/// Retry schedule for mid-run sentinel scrapes: snappier than the
/// completion-scrape default so one struggling worker cannot stall the
/// poll loop past a liveness cadence.
const MIDRUN_RETRY: RetryPolicy = RetryPolicy {
    attempts: 2,
    base: Duration::from_millis(10),
};

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct MeshOptions {
    /// Correlation id stamped on every worker (forwarded as `--run-id`).
    pub run_id: String,
    /// Job-to-shard assignment.
    pub plan: ShardPlan,
    /// Liveness poll cadence.
    pub poll_interval: Duration,
    /// Respawns allowed per shard before the mesh gives up.
    pub max_respawns: usize,
    /// SIGKILL this shard's original worker once it has a job in flight
    /// (chaos testing; replacements are never chaos-killed).
    pub chaos_kill: Option<usize>,
    /// HTTP deadlines for polls and scrapes.
    pub timeouts: HttpTimeouts,
    /// Wall-clock budget for the whole mesh.
    pub deadline: Duration,
    /// Mid-run `/metrics` scrape cadence; `None` disables the sentinel
    /// pass entirely.
    pub scrape_interval: Option<Duration>,
    /// Where mid-run scrapes land: per-worker-labeled series plus one
    /// fleet-wide rule evaluation per scrape tick. Ops-only — these
    /// samples never touch the federated registry, which stays
    /// exactly-once from the post-completion scrapes.
    pub sentinel: Option<SharedSentinel>,
    /// Exposition prefix of the workers' counters (`qa_fleet` for the
    /// production worker), used to parse mid-run scrapes back into a
    /// registry.
    pub metric_prefix: String,
}

impl MeshOptions {
    /// Defaults for a `plan`-shaped mesh: 25 ms polls, 3 respawns per
    /// shard, no chaos, 120 s deadline.
    pub fn new(run_id: &str, plan: ShardPlan) -> MeshOptions {
        MeshOptions {
            run_id: run_id.to_string(),
            plan,
            poll_interval: Duration::from_millis(25),
            max_respawns: 3,
            chaos_kill: None,
            timeouts: HttpTimeouts::default(),
            deadline: Duration::from_secs(120),
            scrape_interval: None,
            sentinel: None,
            metric_prefix: "qa_fleet".to_string(),
        }
    }
}

/// The artifacts scraped from a worker after it reported `run complete`.
#[derive(Clone, Debug)]
pub struct WorkerScrape {
    /// `/metrics` body (Prometheus text).
    pub metrics: String,
    /// `/flight` body (flight-recorder JSON with correlation ids).
    pub flight: String,
    /// `/profile` body (collapsed stacks).
    pub profile: String,
    /// `/events` body (wide-event JSONL tail). Best-effort: empty when
    /// the worker serves no event ring, so older workers still scrape.
    pub events: String,
}

/// One worker process's life, as the coordinator saw it.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// `w<shard>` for originals, `w<shard>r<n>` for the n-th respawn.
    pub worker_id: String,
    /// The shard this worker owned.
    pub shard: usize,
    /// 0 for the original, n for the n-th replacement.
    pub respawn: usize,
    /// Process exit code, if the process exited with one.
    pub exit_code: Option<i32>,
    /// Whether the worker died before completing its shard.
    pub died: bool,
    /// Whether the coordinator chaos-killed it.
    pub chaos_killed: bool,
    /// Global job indices the worker finished.
    pub jobs_done: Vec<usize>,
    /// Global job indices started but unfinished at death (empty unless
    /// `died`).
    pub in_flight_at_death: Vec<usize>,
    /// Post-completion scrape (`None` for dead workers — never scraped,
    /// which is what keeps federated metrics exactly-once).
    pub scrape: Option<WorkerScrape>,
    /// Liveness history from the poll loop.
    pub timeline: Timeline,
}

/// Everything the mesh learned: one report per worker process (including
/// dead ones and their replacements), plus the degraded verdict.
#[derive(Debug)]
pub struct MeshOutcome {
    /// Reports in retirement order; sort by `(shard, respawn)` for a
    /// stable table.
    pub reports: Vec<WorkerReport>,
    /// True iff any worker died or exited non-zero — even when
    /// reassignment repaired the run.
    pub degraded: bool,
    /// Scrape HTTP attempts beyond the first, summed over every mid-run
    /// and completion scrape. Counted in a coordinator-local registry —
    /// never merged into the federated one, whose exposition must stay
    /// byte-identical across shard counts.
    pub scrape_retries: u64,
}

impl MeshOutcome {
    /// Reports of workers that completed their shard and were scraped,
    /// ordered by shard.
    pub fn completed(&self) -> Vec<&WorkerReport> {
        let mut done: Vec<&WorkerReport> = self
            .reports
            .iter()
            .filter(|r| !r.died && r.scrape.is_some())
            .collect();
        done.sort_by_key(|r| r.shard);
        done
    }

    /// Reports of workers that died mid-shard, in death order.
    pub fn casualties(&self) -> Vec<&WorkerReport> {
        self.reports.iter().filter(|r| r.died).collect()
    }
}

/// Job progress parsed off one worker's stdout.
#[derive(Debug, Default)]
struct Progress {
    addr: Option<SocketAddr>,
    started: BTreeSet<usize>,
    done: BTreeSet<usize>,
    complete: bool,
}

/// Apply one stdout line to the progress state. Returns `false` for
/// non-protocol lines (the worker's own summary output), which the
/// coordinator forwards to stderr instead of swallowing.
fn apply_line(line: &str, progress: &Mutex<Progress>) -> bool {
    let mut p = progress.lock().expect("progress lock poisoned");
    if let Some(rest) = line.strip_prefix("pulse: serving on ") {
        if let Ok(addr) = rest.trim().parse() {
            p.addr = Some(addr);
            return true;
        }
        return false;
    }
    if line == "pulse: run complete" {
        p.complete = true;
        return true;
    }
    if let Some(rest) = line.strip_prefix("fleet: job ") {
        let mut parts = rest.split_ascii_whitespace();
        if let (Some(idx), Some(what)) = (parts.next(), parts.next()) {
            if let Ok(idx) = idx.parse::<usize>() {
                match what {
                    "start" => {
                        p.started.insert(idx);
                        return true;
                    }
                    "done" => {
                        p.done.insert(idx);
                        return true;
                    }
                    _ => {}
                }
            }
        }
        return false;
    }
    false
}

/// A live worker process and its trackers.
struct ActiveWorker {
    shard: usize,
    respawn: usize,
    worker_id: String,
    child: Child,
    progress: Arc<Mutex<Progress>>,
    reader: Option<JoinHandle<()>>,
    timeline: Timeline,
    chaos_killed: bool,
}

impl ActiveWorker {
    fn spawn(
        make_command: &dyn Fn(usize, &str) -> Command,
        shard: usize,
        respawn: usize,
    ) -> std::io::Result<ActiveWorker> {
        let worker_id = if respawn == 0 {
            format!("w{shard}")
        } else {
            format!("w{shard}r{respawn}")
        };
        let mut cmd = make_command(shard, &worker_id);
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let progress = Arc::new(Mutex::new(Progress::default()));
        let thread_progress = Arc::clone(&progress);
        let thread_id = worker_id.clone();
        let reader = std::thread::Builder::new()
            .name(format!("qa-mesh-{worker_id}"))
            .spawn(move || {
                for line in std::io::BufReader::new(stdout).lines() {
                    let Ok(line) = line else { break };
                    if !apply_line(&line, &thread_progress) {
                        eprintln!("[{thread_id}] {line}");
                    }
                }
            })?;
        Ok(ActiveWorker {
            shard,
            respawn,
            worker_id,
            child,
            progress,
            reader: Some(reader),
            timeline: Timeline::new(),
            chaos_killed: false,
        })
    }

    fn join_reader(&mut self) {
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }

    /// Build the final report once the process is reaped.
    fn into_report(mut self, exit_code: Option<i32>, scrape: Option<WorkerScrape>) -> WorkerReport {
        self.join_reader();
        let p = self.progress.lock().expect("progress lock poisoned");
        let died = !p.complete;
        WorkerReport {
            worker_id: self.worker_id,
            shard: self.shard,
            respawn: self.respawn,
            exit_code,
            died,
            chaos_killed: self.chaos_killed,
            jobs_done: p.done.iter().copied().collect(),
            in_flight_at_death: if died {
                p.started.difference(&p.done).copied().collect()
            } else {
                Vec::new()
            },
            scrape,
            timeline: self.timeline.clone(),
        }
    }
}

fn scrape_worker(
    addr: SocketAddr,
    timeouts: HttpTimeouts,
    retries: &Metrics,
) -> std::io::Result<WorkerScrape> {
    // Completion scrapes are the one chance to collect a worker's
    // artifacts (it is /quit right after), so they get the full default
    // retry schedule. Liveness polls stay single-shot http_get.
    let fetch = |path: &str| -> std::io::Result<String> {
        let resp = http_get_retry(addr, path, timeouts, RetryPolicy::default(), Some(retries))?;
        if !resp.is_ok() {
            return Err(std::io::Error::other(format!(
                "{path} answered {}",
                resp.status
            )));
        }
        Ok(resp.body)
    };
    // The tail limits ask for the server's maximum (qa-pulse MAX_TAIL):
    // a scrape wants everything the worker retained, not the short
    // interactive default.
    Ok(WorkerScrape {
        metrics: fetch("/metrics")?,
        flight: fetch("/flight?n=65536")?,
        profile: fetch("/profile")?,
        // Best-effort: a worker without an event ring answers 404 here,
        // which must not fail the whole scrape.
        events: fetch("/events?n=65536").unwrap_or_default(),
    })
}

/// Run the mesh to completion: spawn one worker per shard via
/// `make_command`, supervise, scrape, and reassign dead shards. Returns
/// [`MeshOutcome`] once every shard has a completed, scraped worker.
///
/// Errors are reserved for coordinator-level failures (spawn failure, a
/// shard exhausting its respawns, the deadline): worker deaths and
/// non-zero worker exits are *data*, reported in the outcome with
/// `degraded = true`.
pub fn run_mesh(
    opts: &MeshOptions,
    make_command: impl Fn(usize, &str) -> Command,
) -> std::io::Result<MeshOutcome> {
    let shards = opts.plan.shards;
    let mut reports: Vec<WorkerReport> = Vec::new();
    let mut degraded = false;
    let mut chaos_pending = opts.chaos_kill;
    let mut active: Vec<Option<ActiveWorker>> = Vec::with_capacity(shards);
    for shard in 0..shards {
        active.push(Some(ActiveWorker::spawn(&make_command, shard, 0)?));
    }
    let started_at = Instant::now();
    let mut finished = 0usize;
    // Retry accounting lives in a coordinator-local registry: the
    // federated exposition must not depend on how flaky the scrapes were.
    let scrape_retries = Metrics::new();
    let mut last_scrape: Option<Instant> = None;
    let mut scrape_tick = 0u64;
    let mut poll_tick = 0u64;
    while finished < shards {
        poll_tick += 1;
        if started_at.elapsed() > opts.deadline {
            for w in active.iter_mut().flatten() {
                let _ = w.child.kill();
                let _ = w.child.wait();
                w.join_reader();
            }
            return Err(std::io::Error::other(format!(
                "mesh deadline ({:?}) exceeded with {} of {shards} shard(s) incomplete",
                opts.deadline,
                shards - finished
            )));
        }
        for slot in active.iter_mut() {
            let Some(worker) = slot.as_mut() else {
                continue;
            };
            // Check for process exit *before* reading progress: if the
            // worker already exited, drain its stdout first so a
            // `run complete` printed just before exit is not misread as a
            // mid-batch death.
            let exit = worker.child.try_wait()?;
            if exit.is_some() {
                worker.join_reader();
            }
            let (addr, complete, in_flight) = {
                let p = worker.progress.lock().expect("progress lock poisoned");
                (p.addr, p.complete, p.started.difference(&p.done).count())
            };

            if complete {
                // Completed workers are scraped exactly once, then told to
                // quit and reaped.
                let scrape = match addr {
                    Some(addr) => {
                        let scrape = scrape_worker(addr, opts.timeouts, &scrape_retries);
                        let _ = http_get(addr, "/quit", opts.timeouts);
                        scrape
                    }
                    None => Err(std::io::Error::other("worker never announced its address")),
                };
                let mut worker = slot.take().expect("checked above");
                let exit_code = match exit {
                    Some(status) => status.code(),
                    None => worker.child.wait()?.code(),
                };
                if exit_code != Some(0) {
                    // A tripped budget inside a worker degrades the fleet
                    // even though its telemetry arrived intact.
                    degraded = true;
                }
                let scrape = match scrape {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("mesh: scraping {} failed: {e}", worker.worker_id);
                        degraded = true;
                        None
                    }
                };
                reports.push(worker.into_report(exit_code, scrape));
                finished += 1;
                continue;
            }

            // Death: the process exited without `run complete`. Record the
            // post-mortem (exact in-flight jobs) and reassign the whole
            // shard to a fresh worker — never scraped, so the federated
            // metrics stay exactly-once.
            if let Some(status) = exit {
                let worker = slot.take().expect("checked above");
                let shard = worker.shard;
                let respawn = worker.respawn;
                degraded = true;
                reports.push(worker.into_report(status.code(), None));
                if respawn >= opts.max_respawns {
                    for w in active.iter_mut().flatten() {
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        w.join_reader();
                    }
                    return Err(std::io::Error::other(format!(
                        "shard {shard} died {} time(s); giving up",
                        respawn + 1
                    )));
                }
                *slot = Some(ActiveWorker::spawn(&make_command, shard, respawn + 1)?);
                continue;
            }

            // Liveness poll (only once the worker announced its address).
            if let Some(addr) = addr {
                let health = match http_get(addr, "/healthz", opts.timeouts) {
                    Err(_) => Health::Unreachable,
                    Ok(h) if !h.is_ok() => Health::Unreachable,
                    Ok(_) => match http_get(addr, "/readyz", opts.timeouts) {
                        Ok(r) if r.is_ok() => Health::Ready,
                        _ => Health::Warming,
                    },
                };
                worker.timeline.record_at(poll_tick, health);
            }

            // Chaos: SIGKILL the original worker of the target shard once
            // it has a job in flight, exactly once per mesh.
            if chaos_pending == Some(worker.shard) && worker.respawn == 0 && in_flight > 0 {
                let _ = worker.child.kill();
                worker.chaos_killed = true;
                chaos_pending = None;
            }
        }
        // Mid-run sentinel pass: on its own wall-clock cadence, pull every
        // live worker's /metrics into per-worker-labeled series, then
        // evaluate the rules once so they see the whole fleet at one tick.
        // Ops-only — these samples feed /series-style dashboards and never
        // touch the federated registry (exactly-once from the completion
        // scrapes above).
        if let (Some(sentinel), Some(every)) = (&opts.sentinel, opts.scrape_interval) {
            if last_scrape.is_none_or(|t| t.elapsed() >= every) {
                last_scrape = Some(Instant::now());
                scrape_tick += 1;
                for worker in active.iter().flatten() {
                    let addr = worker.progress.lock().expect("progress lock poisoned").addr;
                    let Some(addr) = addr else { continue };
                    let Ok(resp) = http_get_retry(
                        addr,
                        "/metrics",
                        opts.timeouts,
                        MIDRUN_RETRY,
                        Some(&scrape_retries),
                    ) else {
                        continue;
                    };
                    if !resp.is_ok() {
                        continue;
                    }
                    let Ok(parsed) = parse_prometheus(&resp.body) else {
                        continue;
                    };
                    let Ok(metrics) = parsed.to_metrics(&opts.metric_prefix) else {
                        continue;
                    };
                    let labels = vec![("worker".to_string(), worker.worker_id.clone())];
                    sentinel.ingest(&metrics, &opts.metric_prefix, &labels, scrape_tick);
                }
                sentinel.eval(scrape_tick);
            }
        }
        std::thread::sleep(opts.poll_interval);
    }
    Ok(MeshOutcome {
        reports,
        degraded,
        scrape_retries: scrape_retries.get(Counter::ScrapeRetries),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_lines_drive_the_progress_state() {
        let p = Mutex::new(Progress::default());
        assert!(apply_line("pulse: serving on 127.0.0.1:4471", &p));
        assert!(apply_line("fleet: job 7 start", &p));
        assert!(apply_line("fleet: job 7 done", &p));
        assert!(apply_line("fleet: job 9 start", &p));
        assert!(!apply_line("qa-fleet: 4 run(s) = ...", &p));
        assert!(!apply_line("fleet: job x start", &p));
        assert!(apply_line("pulse: run complete", &p));
        let p = p.lock().unwrap();
        assert_eq!(p.addr.unwrap().port(), 4471);
        assert!(p.complete);
        assert_eq!(
            p.started.difference(&p.done).copied().collect::<Vec<_>>(),
            vec![9],
            "job 9 is in flight"
        );
    }

    #[test]
    fn dead_workers_report_their_in_flight_jobs() {
        // Use a worker that prints protocol lines and exits immediately —
        // from the coordinator's view, a mid-batch death.
        let opts = MeshOptions {
            max_respawns: 0,
            ..MeshOptions::new("test-run", ShardPlan::new(1, 4))
        };
        let err = run_mesh(&opts, |_shard, _id| {
            let mut cmd = Command::new("sh");
            cmd.arg("-c")
                .arg("echo 'fleet: job 0 start'; echo 'fleet: job 0 done'; echo 'fleet: job 2 start'; exit 9");
            cmd
        })
        .expect_err("zero respawns allowed");
        assert!(err.to_string().contains("shard 0 died"), "{err}");
    }

    #[test]
    fn respawned_workers_can_finish_what_the_dead_started() {
        // First spawn dies; the replacement completes and serves real
        // endpoints via a live pulse server in this process.
        use qa_pulse::{PulseServer, PulseState};
        use std::sync::Arc;

        let state = PulseState::new(Arc::new(qa_obs::Metrics::new()), "qa_fleet");
        state.set_ready();
        state.set_flight_source(Box::new(|_tail| "{\"events\":[]}".to_string()));
        let server = PulseServer::serve("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let addr = server.local_addr();

        let opts = MeshOptions {
            poll_interval: Duration::from_millis(5),
            ..MeshOptions::new("test-run", ShardPlan::new(1, 2))
        };
        let outcome = run_mesh(&opts, |_shard, id| {
            let mut cmd = Command::new("sh");
            if id == "w0" {
                cmd.arg("-c").arg("echo 'fleet: job 0 start'; exit 9");
            } else {
                cmd.arg("-c").arg(format!(
                    "echo 'pulse: serving on {addr}'; \
                     echo 'fleet: job 0 start'; echo 'fleet: job 0 done'; \
                     echo 'fleet: job 1 start'; echo 'fleet: job 1 done'; \
                     echo 'pulse: run complete'"
                ));
            }
            cmd
        })
        .expect("mesh completes via the respawn");

        assert!(outcome.degraded, "a death degrades the run");
        let casualties = outcome.casualties();
        assert_eq!(casualties.len(), 1);
        assert_eq!(casualties[0].worker_id, "w0");
        assert_eq!(casualties[0].in_flight_at_death, vec![0]);
        assert_eq!(casualties[0].exit_code, Some(9));

        let completed = outcome.completed();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].worker_id, "w0r1");
        assert_eq!(completed[0].jobs_done, vec![0, 1]);
        let scrape = completed[0].scrape.as_ref().unwrap();
        assert!(scrape.metrics.contains("qa_fleet_steps_total"));
        assert_eq!(scrape.flight, "{\"events\":[]}");
        server.shutdown();
    }
}
