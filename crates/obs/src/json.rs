//! Minimal hand-rolled JSON writer.
//!
//! The sandbox has no crates.io access, so run reports are serialized with
//! this small helper instead of serde. It only ever *writes* JSON; the
//! workspace never needs to parse it.

/// Append `s` to `out` as a JSON string literal, escaping per RFC 8259.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object: handles comma placement and key
/// escaping, so call sites read as a flat list of `field` calls.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Open an object (`{`) on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_str(self.out, key);
        self.out.push(':');
    }

    /// `"key": 123`
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// `"key": 1.25` (written with enough precision to round-trip).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// `"key": true`
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// `"key": "escaped value"`
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_str(self.out, value);
    }

    /// `"key": <value>` where `value` is already-serialized JSON.
    pub fn field_raw(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push_str(value);
    }

    /// `"key": [1, 2, 3]`
    pub fn field_u64_array(&mut self, key: &str, values: impl IntoIterator<Item = u64>) {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
    }

    /// Close the object (`}`).
    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Serialize a whole object in one expression.
pub fn object(build: impl FnOnce(&mut ObjectWriter)) -> String {
    let mut out = String::new();
    let mut w = ObjectWriter::new(&mut out);
    build(&mut w);
    w.finish();
    out
}

/// Serialize a JSON array from already-serialized element strings.
pub fn array(elems: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, e) in elems.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn object_writer_places_commas() {
        let s = object(|w| {
            w.field_u64("a", 1);
            w.field_str("b", "x");
            w.field_bool("c", false);
            w.field_u64_array("d", [1, 2]);
        });
        assert_eq!(s, r#"{"a":1,"b":"x","c":false,"d":[1,2]}"#);
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        let s = object(|w| {
            w.field_f64("x", 1.5);
            w.field_f64("y", f64::NAN);
        });
        assert_eq!(s, r#"{"x":1.5,"y":null}"#);
    }

    #[test]
    fn array_joins_elements() {
        assert_eq!(array(["1".to_string(), "{}".to_string()]), "[1,{}]");
        assert_eq!(array(std::iter::empty()), "[]");
    }
}
