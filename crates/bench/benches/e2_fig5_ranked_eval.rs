//! E2 (Figure 5 / Theorem 4.8): ranked unary-query evaluation — the
//! two-pass algorithm is linear, the naive per-node re-run quadratic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qa_base::Alphabet;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_fig5_ranked_eval");
    let mut a = Alphabet::from_names(["s", "t"]);
    let phi = qa_mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
    let d = qa_mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();

    for height in [4usize, 6, 8, 10] {
        let t = qa_trees::generate::complete(a.symbol("s"), 2, height);
        let n = t.num_nodes();
        group.bench_with_input(BenchmarkId::new("fig5_two_pass", n), &t, |b, t| {
            b.iter(|| qa_mso::query_eval::eval_unary_ranked(&d, t, 2).len())
        });
        // naive is quadratic: keep it to the smaller sizes
        if height <= 8 {
            group.bench_with_input(BenchmarkId::new("naive_per_node", n), &t, |b, t| {
                b.iter(|| qa_mso::query_eval::eval_unary_ranked_naive(&d, t, 2).len())
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
