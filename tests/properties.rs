//! Randomized property tests for the workspace invariants listed in
//! DESIGN.md §6, driven by the deterministic `qa_base::rng` generator so
//! every failure reproduces from its printed seed.

use query_automata::base::rng::{Rng, StdRng};
use query_automata::mso::{compile_string, naive, query_eval, unranked};
use query_automata::prelude::*;
use query_automata::strings::{ops, Regex};
use query_automata::twoway::{behavior::BehaviorAnalysis, crossing, shepherdson};

fn sym(i: usize) -> Symbol {
    Symbol::from_index(i)
}

/// Random regex AST over a 2-symbol alphabet.
fn random_regex(rng: &mut StdRng, depth: u32) -> Regex {
    if depth == 0 || rng.gen_bool(0.3) {
        match rng.gen_range(0..3) {
            0 => Regex::Epsilon,
            1 => Regex::Sym(sym(0)),
            _ => Regex::Sym(sym(1)),
        }
    } else {
        match rng.gen_range(0..3) {
            0 => Regex::Concat(
                Box::new(random_regex(rng, depth - 1)),
                Box::new(random_regex(rng, depth - 1)),
            ),
            1 => Regex::Alt(
                Box::new(random_regex(rng, depth - 1)),
                Box::new(random_regex(rng, depth - 1)),
            ),
            _ => Regex::Star(Box::new(random_regex(rng, depth - 1))),
        }
    }
}

fn random_word(rng: &mut StdRng, max_len: usize) -> Vec<Symbol> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| sym(rng.gen_range(0..2))).collect()
}

/// Random unranked tree over a 2-symbol alphabet, 1..=max_nodes nodes.
fn random_tree(rng: &mut StdRng, max_nodes: usize) -> Tree {
    let n = rng.gen_range(1..=max_nodes);
    query_automata::trees::generate::random(rng, &[sym(0), sym(1)], n, None)
}

/// regex → NFA → DFA → minimized DFA all agree on membership.
#[test]
fn regex_pipeline_agrees() {
    let mut rng = StdRng::seed_from_u64(101);
    for case in 0..64 {
        let r = random_regex(&mut rng, 3);
        let w = random_word(&mut rng, 8);
        let nfa = r.to_nfa(2);
        let dfa = nfa.determinize();
        let min = dfa.minimize();
        let via_nfa = nfa.accepts(&w);
        assert_eq!(via_nfa, dfa.accepts(&w), "case {case}: {r:?} on {w:?}");
        assert_eq!(via_nfa, min.accepts(&w), "case {case}: {r:?} on {w:?}");
        assert!(min.num_states() <= dfa.num_states(), "case {case}");
    }
}

/// complement really complements; intersection with the complement is
/// empty.
#[test]
fn complement_laws() {
    let mut rng = StdRng::seed_from_u64(102);
    for case in 0..64 {
        let r = random_regex(&mut rng, 3);
        let w = random_word(&mut rng, 6);
        let nfa = r.to_nfa(2);
        let comp = ops::complement(&nfa);
        assert_eq!(nfa.accepts(&w), !comp.accepts(&w), "case {case}: {r:?}");
        assert!(nfa.intersect(&comp.to_nfa()).is_empty(), "case {case}");
    }
}

/// Example 3.4 QA: direct run, behavior-function evaluation, the
/// Shepherdson DFA and the crossing-sequence NFAs all agree.
#[test]
fn string_qa_strategies_agree() {
    let qa = query_automata::twoway::string_qa::example_3_4_qa(&Alphabet::from_names(["0", "1"]));
    let shep = shepherdson::to_dfa(qa.machine());
    let cross = crossing::acceptance_nfa(qa.machine());
    let sel = crossing::selection_nfa(&qa);
    let mut rng = StdRng::seed_from_u64(103);
    for case in 0..64 {
        let w = random_word(&mut rng, 10);
        let via_run = qa.query(&w).unwrap();
        let via_beh = qa.query_via_behavior(&w);
        assert_eq!(via_run, via_beh, "case {case}: {w:?}");

        // acceptance: 2DFA vs Shepherdson vs crossing NFA
        let accepts = qa.machine().accepts(&w).unwrap();
        assert_eq!(accepts, shep.accepts(&w), "case {case}: {w:?}");
        assert_eq!(accepts, cross.accepts(&w), "case {case}: {w:?}");

        // selection NFA agrees position by position
        for pos in 0..w.len() {
            let marked = crossing::mark(&w, pos, 2);
            assert_eq!(
                via_run.contains(&pos),
                sel.accepts(&marked),
                "case {case}: {w:?} @ {pos}"
            );
        }
    }
}

/// Behavior analysis reproduces the literal run on random words.
#[test]
fn behavior_analysis_matches_run() {
    let qa = query_automata::twoway::string_qa::example_3_4_qa(&Alphabet::from_names(["0", "1"]));
    let m = qa.machine();
    let mut rng = StdRng::seed_from_u64(104);
    for case in 0..64 {
        let w = random_word(&mut rng, 12);
        let rec = m.run(&w).unwrap();
        let ba = BehaviorAnalysis::analyze(m, &w);
        assert_eq!(ba.accepted(m), rec.accepted, "case {case}: {w:?}");
        for (i, states) in rec.assumed.iter().enumerate() {
            let mut got = ba.assumed[i].clone();
            let mut want = states.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "case {case}: {w:?} @ {i}");
        }
    }
}

/// Compiled MSO sentences agree with the naive semantics on strings.
#[test]
fn mso_string_sentences_agree() {
    let mut a = Alphabet::from_names(["0", "1"]);
    let corpus: Vec<(Formula, query_automata::strings::Dfa)> = [
        "ex x. label(x, 1)",
        "all x. all y. (edge(x, y) -> !(label(x, 1) & label(y, 1)))",
        "ex x. ex y. (x < y & label(x, 1) & label(y, 0))",
        "ex2 X. ((all x. (root(x) -> x in X)) \
         & (all x. all y. (edge(x, y) -> (y in X <-> !(x in X)))) \
         & (all x. (leaf(x) -> !(x in X))))",
    ]
    .iter()
    .map(|src| {
        let f = parse_mso(src, &mut a).unwrap();
        let d = compile_string::compile_sentence(&f, 2).unwrap();
        (f, d)
    })
    .collect();
    let mut rng = StdRng::seed_from_u64(105);
    for case in 0..64 {
        let w = random_word(&mut rng, 7);
        let (f, d) = &corpus[rng.gen_range(0..corpus.len())];
        let naive_verdict = naive::check(naive::Structure::Word(&w), f).unwrap();
        assert_eq!(d.accepts(&w), naive_verdict, "case {case}: {w:?}");
    }
}

/// FCNS round trip on random trees.
#[test]
fn fcns_round_trip() {
    let nil = sym(2);
    let mut rng = StdRng::seed_from_u64(106);
    for case in 0..48 {
        let t = random_tree(&mut rng, 40);
        let enc = query_automata::trees::fcns::encode(&t, nil);
        assert!(enc.is_ranked(2), "case {case}");
        assert_eq!(
            query_automata::trees::fcns::decode(&enc, nil),
            t,
            "case {case}"
        );
    }
}

/// Example 5.14 SQAu ≡ compiled MSO ≡ reference predicate on random
/// trees — Theorem 5.17 in action.
#[test]
fn example_5_14_equals_mso_query() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let sqa = example_5_14(&sigma);
    let mut a = sigma.clone();
    let phi = parse_mso(
        "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
        &mut a,
    )
    .unwrap();
    let automaton = unranked::compile_unary(&phi, "v", 2).unwrap();
    let mut rng = StdRng::seed_from_u64(107);
    for case in 0..48 {
        let t = random_tree(&mut rng, 24);
        let mut via_sqa = sqa.query(&t).unwrap();
        let mut via_mso = query_eval::eval_unary_unranked(&automaton, &t, 2);
        via_sqa.sort_unstable();
        via_mso.sort_unstable();
        assert_eq!(via_sqa, via_mso, "case {case}");
    }
}

/// Two-pass evaluation ≡ naive per-node evaluation (Figure 6).
#[test]
fn two_pass_matches_naive() {
    let mut a = Alphabet::from_names(["0", "1"]);
    let phi = parse_mso("leaf(v) & (ex r. (root(r) & label(r, 1)))", &mut a).unwrap();
    let d = unranked::compile_unary(&phi, "v", 2).unwrap();
    let mut rng = StdRng::seed_from_u64(108);
    for case in 0..48 {
        let t = random_tree(&mut rng, 20);
        let mut fast = query_eval::eval_unary_unranked(&d, &t, 2);
        let mut slow = query_eval::eval_unary_unranked_naive(&d, &t, 2);
        fast.sort_unstable();
        slow.sort_unstable();
        assert_eq!(fast, slow, "case {case}");
    }
}

/// Unranked run confluence: random schedules select the same nodes.
#[test]
fn unranked_runs_are_confluent() {
    let qa = example_5_14(&Alphabet::from_names(["0", "1"]));
    let mut rng = StdRng::seed_from_u64(109);
    for case in 0..48 {
        let t = random_tree(&mut rng, 16);
        let reference = qa.machine().run(&t).unwrap();
        let rec = qa
            .machine()
            .run_scheduled(&t, qa.machine().default_fuel(&t), |n| rng.gen_range(0..n))
            .unwrap();
        assert_eq!(rec.accepted, reference.accepted, "case {case}");
        assert_eq!(rec.assumed, reference.assumed, "case {case}");
    }
}

/// Random metrics registry: arbitrary counter bumps and series samples.
fn random_metrics(rng: &mut StdRng) -> query_automata::obs::Metrics {
    use query_automata::obs::{Counter, Observer, Series};
    let m = query_automata::obs::Metrics::new();
    {
        let mut o = m.observer();
        for _ in 0..rng.gen_range(0..40) {
            let c = Counter::ALL[rng.gen_range(0..Counter::ALL.len())];
            o.count(c, rng.gen_range(0..1000) as u64);
        }
        for _ in 0..rng.gen_range(0..40) {
            let s = Series::ALL[rng.gen_range(0..Series::ALL.len())];
            // Spread samples across the full bucket range, including 0.
            let v = (rng.gen_range(0..1024) as u64) << rng.gen_range(0..50);
            o.record(s, v);
        }
    }
    m
}

/// `Metrics::merge` is commutative and associative — the algebraic fact
/// the mesh's shard-invariant federation rests on: any grouping and any
/// order of worker registries must fold to the same exposition.
#[test]
fn metrics_merge_is_commutative_and_associative() {
    use query_automata::probe::export::prometheus_text;
    let mut rng = StdRng::seed_from_u64(110);
    for case in 0..32 {
        let (a, b, c) = (
            random_metrics(&mut rng),
            random_metrics(&mut rng),
            random_metrics(&mut rng),
        );
        let render = |parts: &[&query_automata::obs::Metrics]| {
            let acc = query_automata::obs::Metrics::new();
            for p in parts {
                acc.merge(p);
            }
            prometheus_text(&acc, "qa_prop")
        };
        // Commutativity: a+b == b+a.
        assert_eq!(render(&[&a, &b]), render(&[&b, &a]), "case {case}");
        // Associativity: (a+b)+c == a+(b+c), via the flat fold and the
        // explicitly grouped fold.
        let ab = query_automata::obs::Metrics::new();
        ab.merge(&a);
        ab.merge(&b);
        let bc = query_automata::obs::Metrics::new();
        bc.merge(&b);
        bc.merge(&c);
        assert_eq!(render(&[&ab, &c]), render(&[&a, &bc]), "case {case}");
        assert_eq!(render(&[&ab, &c]), render(&[&a, &b, &c]), "case {case}");
    }
}

/// The exposition round-trip survives random registries: parsing a render
/// and re-rendering is the identity at the text level, so a mesh scrape
/// loses nothing a federated render would show.
#[test]
fn prometheus_round_trip_is_lossless_on_random_registries() {
    use query_automata::probe::export::prometheus_text;
    use query_automata::pulse::parse_prometheus;
    let mut rng = StdRng::seed_from_u64(111);
    for case in 0..32 {
        let m = random_metrics(&mut rng);
        let rendered = prometheus_text(&m, "qa_prop");
        let rebuilt = parse_prometheus(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: own render must parse: {e}"))
            .to_metrics("qa_prop")
            .unwrap_or_else(|e| panic!("case {case}: scrape must map onto Metrics: {e}"));
        assert_eq!(
            prometheus_text(&rebuilt, "qa_prop"),
            rendered,
            "case {case}"
        );
    }
}
