//! Prometheus text exposition *parser* — the inverse of
//! [`metrics_text`](crate::metrics_text) / `qa_probe::export::prometheus_text`.
//!
//! The mesh coordinator scrapes each worker's `/metrics` and needs the
//! numbers back as a [`Metrics`] registry so that federation is literally
//! `Metrics::merge` — the same commutative operation that already makes
//! `--jobs N` byte-identical inside one process. [`parse_prometheus`]
//! parses the exposition into [`Scrape`] samples (names, label sets,
//! values); [`Scrape::to_metrics`] maps the `<prefix>_*` families back
//! onto [`Counter`]/[`Series`] and rebuilds the histograms from their
//! cumulative `le` buckets.
//!
//! The exposition does not carry a histogram's exact min/max (only
//! buckets, sum and count), so the rebuilt snapshot approximates them by
//! the occupied-bucket bounds. Renders never read min/max, which is what
//! makes the round trip exact at the exposition level:
//! `render(parse(render(m))) == render(m)`.

use qa_obs::metrics::HISTOGRAM_BUCKETS;
use qa_obs::{Counter, HistogramSnapshot, Metrics, Series};

/// One sample line of an exposition: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (histogram samples keep their `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in appearance order (empty for unlabeled samples).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// Exact integer payload when the literal was a plain decimal `u64`.
    /// `f64` cannot represent integers above 2^53 exactly, but the
    /// workspace renderer emits registry counters and histogram sums as
    /// exact `u64` decimals — federation reads this field so the round
    /// trip stays lossless at any magnitude.
    pub exact: Option<u64>,
}

impl Sample {
    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The sample as an exact `u64`: the preserved decimal literal, or the
    /// float if it happens to be a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.exact.or_else(|| {
            (self.value >= 0.0 && self.value.fract() == 0.0 && self.value <= u64::MAX as f64)
                .then_some(self.value as u64)
        })
    }
}

/// A parsed exposition: every sample line, in document order. `# HELP` and
/// `# TYPE` comments are validated for shape but not retained — the sample
/// values are the payload federation needs.
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    /// All samples, in document order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// First sample named `name` (any labels).
    pub fn sample(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Value of the unlabeled sample `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.unlabeled(name).map(|s| s.value)
    }

    fn unlabeled(&self, name: &str) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
    }

    /// Rebuild a [`Metrics`] registry from the `<prefix>_*` families of
    /// this scrape: counters from `<prefix>_<name>_total`, histograms from
    /// `<prefix>_<series>_bucket`/`_sum`/`_count`. Families outside the
    /// prefix (build info, heap gauges, worker info metrics) are left
    /// behind — the coordinator reads those straight off the scrape, and
    /// keeping them out of the merged registry is what keeps the federated
    /// render independent of worker count.
    pub fn to_metrics(&self, prefix: &str) -> Result<Metrics, String> {
        let m = Metrics::new();
        for c in Counter::ALL {
            if let Some(s) = self.unlabeled(&format!("{prefix}_{}_total", c.name())) {
                let v = s.as_u64().ok_or_else(|| {
                    format!("counter {} has non-integer value {}", c.name(), s.value)
                })?;
                if v > 0 {
                    m.count(c, v);
                }
            }
        }
        for s in Series::ALL {
            if let Some(snap) = self.histogram(&format!("{prefix}_{}", s.name()))? {
                m.absorb_series(s, &snap);
            }
        }
        Ok(m)
    }

    /// Reassemble the histogram family `name` (no suffix) from its
    /// cumulative buckets, or `None` if the family has no samples (empty
    /// series are omitted from renders).
    fn histogram(&self, name: &str) -> Result<Option<HistogramSnapshot>, String> {
        let bucket_name = format!("{name}_bucket");
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut last_cumulative = 0u64;
        let mut saw_bucket = false;
        let mut inf = None;
        for s in self.samples.iter().filter(|s| s.name == bucket_name) {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{bucket_name} sample without le label"))?;
            let cumulative = s
                .as_u64()
                .ok_or_else(|| format!("{bucket_name}{{le=\"{le}\"}} is not a u64"))?;
            if le == "+Inf" {
                inf = Some(cumulative);
                continue;
            }
            let idx = le_to_bucket_index(le)
                .ok_or_else(|| format!("{bucket_name} has non-canonical le {le:?}"))?;
            if cumulative < last_cumulative {
                return Err(format!("{bucket_name} buckets are not cumulative"));
            }
            buckets[idx] = cumulative - last_cumulative;
            last_cumulative = cumulative;
            saw_bucket = true;
        }
        let count = self
            .unlabeled(&format!("{name}_count"))
            .and_then(Sample::as_u64);
        let sum = self
            .unlabeled(&format!("{name}_sum"))
            .and_then(Sample::as_u64);
        let (count, sum) = match (count, sum) {
            (Some(c), Some(s)) => (c, s),
            (None, None) if !saw_bucket => return Ok(None),
            _ => return Err(format!("histogram {name} is missing _sum/_count")),
        };
        if let Some(inf) = inf {
            if inf != count {
                return Err(format!(
                    "histogram {name}: le=\"+Inf\" bucket {inf} != count {count}"
                ));
            }
        }
        // The tail above the last rendered bucket: renders drop empty
        // trailing buckets, so anything between the last cumulative value
        // and the count belongs past the rendered range — impossible for
        // our own renderer, so reject it rather than guess a bucket.
        if last_cumulative != count {
            return Err(format!(
                "histogram {name}: buckets cover {last_cumulative} of {count} samples"
            ));
        }
        // min/max are not part of the exposition; approximate them by the
        // bounds of the occupied buckets (render-invisible, see module doc).
        let first = buckets.iter().position(|&b| b != 0);
        let last = buckets.iter().rposition(|&b| b != 0);
        let (min, max) = match (first, last) {
            (Some(f), Some(l)) => (bucket_lower_bound(f), bucket_le_value(l)),
            _ => (0, 0),
        };
        Ok(Some(HistogramSnapshot {
            buckets,
            count,
            sum,
            min,
            max,
        }))
    }
}

/// Inverse of the renderer's `bucket_le`: `"0"` → bucket 0, `"2^i - 1"` →
/// bucket `i`. Returns `None` for any other boundary.
fn le_to_bucket_index(le: &str) -> Option<usize> {
    let v: u64 = le.parse().ok()?;
    if v == 0 {
        return Some(0);
    }
    let succ = v.checked_add(1)?;
    if !succ.is_power_of_two() {
        return None;
    }
    let idx = succ.trailing_zeros() as usize;
    (idx < HISTOGRAM_BUCKETS).then_some(idx)
}

/// Smallest value mapped to bucket `i` (0, then `2^(i-1)`).
fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value mapped to bucket `i` (the renderer's `le`).
fn bucket_le_value(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)) - 1
    }
}

/// Parse Prometheus text exposition into a [`Scrape`].
///
/// Accepts exactly the dialect the workspace renders (and
/// [`validate_prometheus`](crate::validate_prometheus) checks): `# HELP` /
/// `# TYPE` comments, and `name{labels} value` samples with the three
/// standard label escapes (`\\`, `\"`, `\n`).
pub fn parse_prometheus(text: &str) -> Result<Scrape, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.trim_start().splitn(2, ' ');
            let kind = parts.next().unwrap_or("");
            if kind != "TYPE" && kind != "HELP" {
                return Err(format!("line {lineno}: unknown comment kind {kind:?}"));
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(Scrape { samples })
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => (&line[..brace], &line[brace..]),
        None => {
            let (name, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| "sample has no value".to_string())?;
            let (value, exact) = parse_value(value)?;
            return Ok(Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value,
                exact,
            });
        }
    };
    let (labels, after) = parse_labels(rest)?;
    let (value, exact) = parse_value(after.trim_start())?;
    Ok(Sample {
        name: name_part.to_string(),
        labels,
        value,
        exact,
    })
}

fn parse_value(v: &str) -> Result<(f64, Option<u64>), String> {
    match v {
        "+Inf" => return Ok((f64::INFINITY, None)),
        "-Inf" => return Ok((f64::NEG_INFINITY, None)),
        _ => {}
    }
    if let Ok(exact) = v.parse::<u64>() {
        return Ok((exact as f64, Some(exact)));
    }
    v.parse::<f64>()
        .map(|f| (f, None))
        .map_err(|_| format!("bad value {v:?}"))
}

/// Label pairs in appearance order.
type Labels = Vec<(String, String)>;

/// Parse `{k="v",…}` (with exposition escapes) at the start of `s`;
/// returns the pairs and the remainder after the closing brace.
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("labels must start with '{'".to_string()),
    }
    let mut labels = Vec::new();
    let mut rest = &s[1..];
    loop {
        rest = rest.trim_start_matches(',');
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without '='".to_string())?;
        let key = rest[..eq].to_string();
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        let mut value = String::new();
        let mut it = rest[eq + 1..].char_indices();
        match it.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label {key} value is not quoted")),
        }
        let consumed = loop {
            match it.next() {
                None => return Err(format!("label {key} value is unterminated")),
                Some((j, '"')) => break eq + 1 + j + 1,
                Some((_, '\\')) => match it.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape in label {key}: {other:?}")),
                },
                Some((_, c)) => value.push(c),
            }
        };
        labels.push((key, value));
        rest = &rest[consumed..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::Observer;

    #[test]
    fn parses_samples_labels_and_escapes() {
        let text = "# HELP x help text here\n\
                    # TYPE x counter\n\
                    x 41\n\
                    y{a=\"1\",b=\"q\\\"uo\\\\te\\n\"} 2.5\n\
                    z{le=\"+Inf\"} +Inf\n";
        let scrape = parse_prometheus(text).expect("parses");
        assert_eq!(scrape.value("x"), Some(41.0));
        let y = scrape.sample("y").unwrap();
        assert_eq!(y.label("a"), Some("1"));
        assert_eq!(y.label("b"), Some("q\"uo\\te\n"));
        assert_eq!(y.value, 2.5);
        assert!(scrape.sample("z").unwrap().value.is_infinite());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_prometheus("novalue\n").is_err());
        assert!(parse_prometheus("x{a=\"unterminated} 1\n").is_err());
        assert!(parse_prometheus("x{a=1} 1\n").is_err());
        assert!(parse_prometheus("x nan?\n").is_err());
        assert!(parse_prometheus("# WAT x\n").is_err());
    }

    #[test]
    fn le_boundaries_invert_the_renderer() {
        assert_eq!(le_to_bucket_index("0"), Some(0));
        assert_eq!(le_to_bucket_index("1"), Some(1));
        assert_eq!(le_to_bucket_index("3"), Some(2));
        assert_eq!(le_to_bucket_index("7"), Some(3));
        assert_eq!(le_to_bucket_index("2"), None);
        assert_eq!(le_to_bucket_index("x"), None);
    }

    fn workload() -> Metrics {
        let m = Metrics::new();
        let mut o = m.observer();
        o.count(Counter::Steps, 1234);
        o.count(Counter::CacheHits, 9);
        for v in [0u64, 1, 1, 5, 16, 300, 301, 40_000] {
            o.record(Series::TraceLength, v);
            o.record(Series::RunSteps, v * 3);
        }
        m
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let m = workload();
        let rendered = qa_probe::export::prometheus_text(&m, "qa_fleet");
        let scrape = parse_prometheus(&rendered).expect("own render parses");
        let rebuilt = scrape.to_metrics("qa_fleet").expect("maps onto Metrics");
        assert_eq!(
            qa_probe::export::prometheus_text(&rebuilt, "qa_fleet"),
            rendered,
            "render(parse(render(m))) must equal render(m)"
        );
        // And the parsed totals are the original totals.
        assert_eq!(rebuilt.get(Counter::Steps), 1234);
        let h = rebuilt.histogram(Series::TraceLength);
        assert_eq!((h.count, h.sum), (8, 40_624));
    }

    #[test]
    fn merge_of_parsed_scrapes_equals_parse_of_merged_registry() {
        // Federation correctness in one assertion: scraping two workers
        // and merging the parsed registries gives the same exposition as
        // one registry that saw both workloads.
        let (a, b) = (workload(), workload());
        b.count(Counter::Steps, 766); // make the shards unequal
        b.record(Series::WitnessSize, 12);

        let direct = Metrics::new();
        direct.merge(&a);
        direct.merge(&b);

        let federated = Metrics::new();
        for w in [&a, &b] {
            let text = qa_probe::export::prometheus_text(w, "qa_fleet");
            let parsed = parse_prometheus(&text)
                .unwrap()
                .to_metrics("qa_fleet")
                .unwrap();
            federated.merge(&parsed);
        }
        assert_eq!(
            qa_probe::export::prometheus_text(&federated, "qa_fleet"),
            qa_probe::export::prometheus_text(&direct, "qa_fleet"),
        );
    }

    #[test]
    fn foreign_families_stay_out_of_the_registry() {
        let text = "# TYPE qa_build_info gauge\n\
                    qa_build_info{version=\"0.1.0\",rustc=\"x\"} 1\n\
                    # TYPE qa_fleet_worker_info gauge\n\
                    qa_fleet_worker_info{shard=\"0/2\",worker_id=\"w0\"} 1\n\
                    # TYPE qa_fleet_steps_total counter\n\
                    qa_fleet_steps_total 7\n";
        let scrape = parse_prometheus(text).unwrap();
        let m = scrape.to_metrics("qa_fleet").unwrap();
        assert_eq!(m.get(Counter::Steps), 7);
        assert!(m.infos().is_empty(), "info gauges are not merged");
        // …but the coordinator can still read the worker labels off the scrape.
        let info = scrape.sample("qa_fleet_worker_info").unwrap();
        assert_eq!(info.label("shard"), Some("0/2"));
    }

    #[test]
    fn inconsistent_histograms_are_rejected() {
        let bad_count = "qa_x_run_steps_bucket{le=\"0\"} 2\n\
                         qa_x_run_steps_bucket{le=\"+Inf\"} 2\n\
                         qa_x_run_steps_sum 0\n\
                         qa_x_run_steps_count 3\n";
        assert!(parse_prometheus(bad_count)
            .unwrap()
            .to_metrics("qa_x")
            .is_err());
        let not_cumulative = "qa_x_run_steps_bucket{le=\"0\"} 2\n\
                              qa_x_run_steps_bucket{le=\"1\"} 1\n\
                              qa_x_run_steps_sum 0\n\
                              qa_x_run_steps_count 2\n";
        assert!(parse_prometheus(not_cumulative)
            .unwrap()
            .to_metrics("qa_x")
            .is_err());
    }
}
