//! Bounded-enumeration oracle.
//!
//! Enumerates every Σ-tree up to a node budget (and optional arity bound)
//! and evaluates the query on each. Serves as (a) the ground truth the
//! exact procedures are property-tested against, and (b) the documented
//! fallback decision procedure for unranked query automata with arbitrary
//! two-way stay rules (DESIGN.md §2), where it is sound for finding
//! witnesses but incomplete for proving emptiness.

use qa_base::Symbol;
use qa_trees::{NodeId, Tree};

/// Enumerate all trees with up to `max_nodes` nodes over `sigma` labels,
/// with arity bounded by `max_arity` (`None` = unbounded, i.e. up to
/// `max_nodes - 1`).
pub fn all_trees(sigma: usize, max_arity: Option<usize>, max_nodes: usize) -> Vec<Tree> {
    // trees_of_size[k] = all trees with exactly k nodes
    let mut by_size: Vec<Vec<Tree>> = vec![Vec::new(); max_nodes + 1];
    for a in 0..sigma {
        by_size[1].push(Tree::leaf(Symbol::from_index(a)));
    }
    for size in 2..=max_nodes {
        // a root label + a forest of children with sizes summing to size-1
        let forests = forests_of_size(size - 1, &by_size, max_arity);
        for forest in forests {
            for a in 0..sigma {
                by_size[size].push(Tree::node(Symbol::from_index(a), forest.clone()));
            }
        }
    }
    by_size.into_iter().flatten().collect()
}

/// All ordered forests with the given total node count, using `by_size` for
/// the component trees.
fn forests_of_size(
    total: usize,
    by_size: &[Vec<Tree>],
    max_arity: Option<usize>,
) -> Vec<Vec<Tree>> {
    let mut out = Vec::new();
    // partition `total` into an ordered sequence of positive sizes
    fn go(
        remaining: usize,
        arity_left: Option<usize>,
        by_size: &[Vec<Tree>],
        current: &mut Vec<Tree>,
        out: &mut Vec<Vec<Tree>>,
    ) {
        if remaining == 0 {
            if !current.is_empty() {
                out.push(current.clone());
            }
            return;
        }
        if arity_left == Some(0) {
            return;
        }
        for first in 1..=remaining {
            for t in &by_size[first] {
                current.push(t.clone());
                go(
                    remaining - first,
                    arity_left.map(|a| a - 1),
                    by_size,
                    current,
                    out,
                );
                current.pop();
            }
        }
    }
    go(total, max_arity, by_size, &mut Vec::new(), &mut out);
    out
}

/// Brute-force non-emptiness: the first (tree, node) pair selected by
/// `query` over all trees within the budget.
pub fn non_emptiness_bounded(
    query: &dyn Fn(&Tree) -> Vec<NodeId>,
    sigma: usize,
    max_arity: usize,
    max_nodes: usize,
) -> Option<(Tree, NodeId)> {
    for t in all_trees(sigma, Some(max_arity), max_nodes) {
        if let Some(&v) = query(&t).first() {
            return Some((t, v));
        }
    }
    None
}

/// Brute-force containment check within the budget: a (tree, node) selected
/// by `q1` but not `q2`, if any.
pub fn containment_bounded(
    q1: &dyn Fn(&Tree) -> Vec<NodeId>,
    q2: &dyn Fn(&Tree) -> Vec<NodeId>,
    sigma: usize,
    max_arity: usize,
    max_nodes: usize,
) -> Option<(Tree, NodeId)> {
    for t in all_trees(sigma, Some(max_arity), max_nodes) {
        let s2 = q2(&t);
        for v in q1(&t) {
            if !s2.contains(&v) {
                return Some((t, v));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_counts_are_catalan_like() {
        // unary alphabet, unbounded arity: #ordered trees with n nodes is
        // the Catalan number C(n-1): 1, 1, 2, 5, 14
        let trees = all_trees(1, None, 5);
        let mut counts = [0usize; 6];
        for t in &trees {
            counts[t.num_nodes()] += 1;
        }
        assert_eq!(&counts[1..], &[1, 1, 2, 5, 14]);
    }

    #[test]
    fn arity_bound_restricts() {
        let trees = all_trees(1, Some(1), 4);
        // only chains
        assert_eq!(trees.len(), 4);
        for t in &trees {
            assert!(t.rank() <= 1);
        }
    }

    #[test]
    fn label_combinations_multiply() {
        let trees = all_trees(2, None, 2);
        // 2 single leaves + (2 roots × 2 leaf children) = 6
        assert_eq!(trees.len(), 6);
    }

    #[test]
    fn bounded_nonemptiness_finds_simple_witness() {
        let found = non_emptiness_bounded(
            &|t| {
                // query: select the root if it has exactly 2 children
                if t.arity(t.root()) == 2 {
                    vec![t.root()]
                } else {
                    vec![]
                }
            },
            1,
            3,
            4,
        );
        let (t, v) = found.unwrap();
        assert_eq!(t.arity(v), 2);
    }

    #[test]
    fn bounded_containment_finds_violation() {
        let q1 = |t: &Tree| t.nodes().collect::<Vec<_>>(); // everything
        let q2 = |t: &Tree| vec![t.root()]; // just the root
        let hit = containment_bounded(&q1, &q2, 1, 2, 3);
        assert!(hit.is_some());
        assert!(containment_bounded(&q2, &q1, 1, 2, 3).is_none());
    }
}
