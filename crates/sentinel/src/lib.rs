//! # qa-sentinel
//!
//! Embedded time-series rings and SLO burn-rate alerting for
//! `query-automata` fleets.
//!
//! Every observability layer before this one is point-in-time: `/metrics`
//! is a snapshot, the flight ring a postmortem, `events.jsonl` per-job.
//! The sentinel watches *rates over time*: a [`SeriesStore`] of
//! fixed-capacity `(tick, value)` rings fed by scrapes, window queries
//! ([`SeriesStore::rate`], [`SeriesStore::delta`],
//! [`SeriesStore::quantile_over_window`]), and an [`AlertEngine`] running
//! declarative [`AlertRule`]s — threshold, absence, and two-window SLO
//! burn-rate — through a pending→firing→resolved state machine with
//! for-duration holdoff.
//!
//! ## Logical clock, two drivers
//!
//! Ticks are injected, never read from a wall clock, so evaluation is a
//! pure function of the sample stream. The two drivers:
//!
//! - **Live** ([`SharedSentinel`]): the fleet's scrape loop and the mesh
//!   coordinator's poll loop tick once per scrape, feeding dashboards via
//!   the pulse `/series` and `/alerts` endpoints. Wall-clock pacing makes
//!   *which tick sees which value* nondeterministic — this path never
//!   decides an exit code.
//! - **Replay** ([`Replay`]): one tick per completed job, in global job
//!   order, from each job's exact counters. Byte-identical across
//!   `--jobs N`, `--mesh N` and reruns; this is what writes `alerts.log`,
//!   names firing alerts in `postmortem.txt`, and sets the fleet's exit
//!   code. `qa-trace analyze slo` reruns the same replay offline from an
//!   `events.jsonl`.
//!
//! The crate depends only on `qa-obs` (registry, JSON, shared quantile
//! rule); scraping remote workers stays in the callers, which convert
//! `qa_pulse::parse_prometheus` scrapes into [`qa_obs::Metrics`] before
//! ingestion.

#![deny(missing_docs)]

pub mod engine;
pub mod replay;
pub mod rules;
pub mod store;

use std::sync::{Arc, Mutex, MutexGuard};

use qa_obs::Metrics;

pub use engine::{AlertEngine, AlertState, Transition};
pub use replay::{JobStats, Replay};
pub use rules::{parse_rules, AlertRule, Cmp, RuleKind};
pub use store::{Labels, SeriesKey, SeriesStore};

/// A store + engine pair behind one lock, shareable across threads — the
/// live sentinel a scrape loop feeds and a pulse server reads.
///
/// Cloning shares the underlying state (`Arc`).
#[derive(Clone, Debug)]
pub struct SharedSentinel {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    store: SeriesStore,
    engine: AlertEngine,
    next_tick: u64,
}

impl SharedSentinel {
    /// Ring capacity of the live store (samples per series).
    pub const CAPACITY: usize = 512;

    /// Live sentinel evaluating `rules`.
    pub fn new(rules: Vec<AlertRule>) -> SharedSentinel {
        SharedSentinel {
            inner: Arc::new(Mutex::new(Inner {
                store: SeriesStore::new(Self::CAPACITY),
                engine: AlertEngine::new(rules),
                next_tick: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("sentinel lock poisoned")
    }

    /// Ingest one scrape of `metrics` under the next logical tick and
    /// evaluate every rule. `labels` are attached to every sample (empty
    /// for the in-process loop, `worker="wN"` in the coordinator).
    /// Returns the transitions taken.
    pub fn scrape(&self, metrics: &Metrics, prefix: &str, labels: &Labels) -> Vec<Transition> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.next_tick += 1;
        let tick = inner.next_tick;
        inner.store.observe_metrics(metrics, prefix, labels, tick);
        inner.engine.eval(&inner.store, tick)
    }

    /// Ingest samples for one scrape tick *without* evaluating — the mesh
    /// coordinator appends every worker's scrape first, then calls
    /// [`SharedSentinel::eval`] once, so rules see the whole fleet.
    /// Returns the tick used.
    pub fn ingest(&self, metrics: &Metrics, prefix: &str, labels: &Labels, tick: u64) -> u64 {
        let mut inner = self.lock();
        inner.next_tick = inner.next_tick.max(tick);
        inner.store.observe_metrics(metrics, prefix, labels, tick);
        tick
    }

    /// Evaluate every rule at `tick` (after one or more
    /// [`SharedSentinel::ingest`] calls). Returns the transitions taken.
    pub fn eval(&self, tick: u64) -> Vec<Transition> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.next_tick = inner.next_tick.max(tick);
        inner.engine.eval(&inner.store, tick)
    }

    /// Names of the alerts currently firing, in rule order.
    pub fn firing(&self) -> Vec<String> {
        self.lock()
            .engine
            .firing()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// The `/series` endpoint body (see [`SeriesStore::to_json`]).
    pub fn series_json(&self, name: Option<&str>, n: usize) -> String {
        self.lock().store.to_json(name, n)
    }

    /// The `/alerts` endpoint body (see [`AlertEngine::to_json`]).
    pub fn alerts_json(&self) -> String {
        self.lock().engine.to_json()
    }

    /// The live transition log (wall-clock driven — ops-facing, not the
    /// deterministic artifact; that one comes from [`Replay`]).
    pub fn render_log(&self) -> String {
        self.lock().engine.render_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::Counter;

    #[test]
    fn shared_sentinel_scrapes_and_reports() {
        let rules = parse_rules("alert hot threshold qa_steps_total > 10 for 0\n").unwrap();
        let s = SharedSentinel::new(rules);
        let m = Metrics::new();
        m.count(Counter::Steps, 5);
        assert!(s.scrape(&m, "qa", &Vec::new()).is_empty());
        m.count(Counter::Steps, 20);
        let t = s.scrape(&m, "qa", &Vec::new());
        assert_eq!(t.len(), 2, "pending + firing");
        assert_eq!(s.firing(), vec!["hot".to_string()]);
        assert!(s.alerts_json().contains("\"state\":\"firing\""));
        assert!(s
            .series_json(Some("qa_steps_total"), 8)
            .contains("qa_steps_total"));
        assert!(s.render_log().contains("pending -> firing"));
    }

    #[test]
    fn ingest_then_eval_keeps_workers_apart() {
        // Rules read unlabeled series; per-worker samples live under their
        // own label sets, side by side in one store.
        let rules = parse_rules("alert gone absent qa_fleet_jobs_total for 1\n").unwrap();
        let s = SharedSentinel::new(rules);
        let m = Metrics::new();
        m.count(Counter::Steps, 100);
        let w0 = vec![("worker".to_string(), "w0".to_string())];
        let w1 = vec![("worker".to_string(), "w1".to_string())];
        s.ingest(&m, "qa_fleet", &w0, 1);
        s.ingest(&m, "qa_fleet", &w1, 1);
        // The unlabeled family was never fed: the absence rule goes
        // pending on the first eval.
        let t = s.eval(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, "pending");
        // Both workers' series exist side by side.
        let json = s.series_json(Some("qa_fleet_steps_total"), 4);
        assert!(json.contains("\"worker\":\"w0\""), "{json}");
        assert!(json.contains("\"worker\":\"w1\""), "{json}");
    }
}
