//! Exact decision procedures for ranked query automata — the Theorem 6.3
//! construction on cut semantics.
//!
//! A subtree's entire interaction with its context is captured by a
//! *summary*: its root label, whether it contains the marked node, whether
//! its root is the marked node, and — per machine under consideration — a
//! *behavior function* mapping each entry state to either `Settles(q',
//! sel)` (the subtree eventually folds back to its root in the up-state
//! `q'`, having visited the marked node in a selecting state iff `sel`) or
//! `Never` (it gets stuck or loops inside). These summaries are exactly
//! the `(f, d, s, σ)` states of the paper's bottom-up automaton `B`,
//! extended with the `Σ × {1}` mark of the query reduction; we enumerate
//! only the *realizable* ones by a lazy fixpoint, keeping a witness tree
//! per summary.
//!
//! Non-emptiness, containment and equivalence all run the same fixpoint —
//! containment simply tracks the behavior of both machines on the shared
//! witness space.

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_core::ranked::twoway::Polarity;
use qa_core::ranked::RankedQa;
use qa_obs::{Counter, NoopObserver, Observer, Series};
use qa_strings::StateId;
use qa_trees::{NodeId, Tree};

/// Behavior of a subtree on one entry state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Beh {
    /// Folds back to its root in this up-state; `sel` = the marked node was
    /// assumed in a selecting state during the excursion.
    Settles { state: StateId, sel: bool },
    /// Gets stuck or loops inside; the global run can never accept.
    Never,
}

/// A realizable subtree summary for a family of machines.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    label: Symbol,
    root_marked: bool,
    has_mark: bool,
    /// `behs[machine][entry state]`.
    behs: Vec<Vec<Beh>>,
}

/// A summary with a *derivation* — which children items produced it — so a
/// representative tree can be materialized on demand without storing (and
/// exponentially duplicating) trees during saturation.
#[derive(Clone, Debug)]
struct Item {
    key: Key,
    /// indices of the child items this summary was first derived from
    /// (empty for leaves).
    children_idx: Vec<usize>,
}

/// A witness for a query-level decision: the tree and the node in question.
#[derive(Clone, Debug)]
pub struct RankedWitness {
    /// The input tree.
    pub tree: Tree,
    /// The node selected (by the left automaton, for containment
    /// violations).
    pub node: NodeId,
}

/// Budget for the summary fixpoint (the paper's EXPTIME bound is real:
/// summaries can be exponential in the state count).
pub const DEFAULT_MAX_ITEMS: usize = 50_000;

fn leaf_item(machines: &[&RankedQa], label: Symbol, marked: bool) -> Item {
    let behs = machines
        .iter()
        .map(|qa| {
            let m = qa.machine();
            (0..m.num_states())
                .map(|q_idx| {
                    let mut cur = StateId::from_index(q_idx);
                    let mut visited = vec![false; m.num_states()];
                    let mut sel = marked && qa.is_selecting(cur, label);
                    loop {
                        if visited[cur.index()] {
                            break Beh::Never;
                        }
                        visited[cur.index()] = true;
                        match m.polarity(cur, label) {
                            Some(Polarity::Up) => {
                                break Beh::Settles { state: cur, sel };
                            }
                            Some(Polarity::Down) => match m.leaf(cur, label) {
                                Some(q2) => {
                                    sel = sel || (marked && qa.is_selecting(q2, label));
                                    cur = q2;
                                }
                                None => break Beh::Never,
                            },
                            None => break Beh::Never,
                        }
                    }
                })
                .collect()
        })
        .collect();
    Item {
        key: Key {
            label,
            root_marked: marked,
            has_mark: marked,
            behs,
        },
        children_idx: Vec::new(),
    }
}

/// Compute the summary key of an inner node from its children's keys only
/// (no witness work — this is the hot path of the fixpoint).
fn inner_key(machines: &[&RankedQa], label: Symbol, marked: bool, children: &[&Key]) -> Key {
    let n = children.len();
    let behs: Vec<Vec<Beh>> = machines
        .iter()
        .enumerate()
        .map(|(mi, qa)| {
            let m = qa.machine();
            (0..m.num_states())
                .map(|q_idx| {
                    let mut cur = StateId::from_index(q_idx);
                    let mut visited = vec![false; m.num_states()];
                    let mut sel = marked && qa.is_selecting(cur, label);
                    loop {
                        if visited[cur.index()] {
                            break Beh::Never;
                        }
                        visited[cur.index()] = true;
                        match m.polarity(cur, label) {
                            Some(Polarity::Up) => {
                                break Beh::Settles { state: cur, sel };
                            }
                            Some(Polarity::Down) => {
                                let Some(down) = m.down(cur, label, n) else {
                                    break Beh::Never;
                                };
                                let down = down.to_vec();
                                let mut pairs = Vec::with_capacity(n);
                                let mut dead = false;
                                for (i, child) in children.iter().enumerate() {
                                    match child.behs[mi][down[i].index()] {
                                        Beh::Settles { state, sel: csel } => {
                                            sel = sel || csel;
                                            pairs.push((state, child.label));
                                        }
                                        Beh::Never => {
                                            dead = true;
                                            break;
                                        }
                                    }
                                }
                                if dead {
                                    break Beh::Never;
                                }
                                match m.up(&pairs) {
                                    Some(q2) => {
                                        sel = sel || (marked && qa.is_selecting(q2, label));
                                        cur = q2;
                                    }
                                    None => break Beh::Never,
                                }
                            }
                            None => break Beh::Never,
                        }
                    }
                })
                .collect()
        })
        .collect();
    Key {
        label,
        root_marked: marked,
        has_mark: marked || children.iter().any(|c| c.has_mark),
        behs,
    }
}

/// Materialize the representative tree of `items[idx]` from the derivation
/// chain, returning the tree and its marked node (if any). Recursion depth
/// equals derivation depth, which the fixpoint keeps modest (items are
/// discovered smallest-derivation-first).
fn materialize(items: &[Item], idx: usize) -> (Tree, Option<NodeId>) {
    let it = &items[idx];
    if it.children_idx.is_empty() {
        let t = Tree::leaf(it.key.label);
        let mark = it.key.root_marked.then(|| t.root());
        return (t, mark);
    }
    let mut subtrees = Vec::with_capacity(it.children_idx.len());
    let mut child_marks = Vec::with_capacity(it.children_idx.len());
    for &c in &it.children_idx {
        let (t, m) = materialize(items, c);
        child_marks.push(m.map(|mk| (t.clone(), mk)));
        subtrees.push(t);
    }
    let tree = Tree::node(it.key.label, subtrees);
    let mark = if it.key.root_marked {
        Some(tree.root())
    } else {
        child_marks.iter().enumerate().find_map(|(i, cm)| {
            cm.as_ref().map(|(small, mk)| {
                find_corresponding(&tree, tree.child(tree.root(), i), small, *mk)
            })
        })
    };
    (tree, mark)
}

/// Find the node in `big` (rooted at `big_root`) corresponding to `node` in
/// `small` under the structural isomorphism of the grafted copy.
fn find_corresponding(big: &Tree, big_root: NodeId, small: &Tree, node: NodeId) -> NodeId {
    // path from small's root to node
    let mut path = Vec::new();
    let mut cur = node;
    while let Some(p) = small.parent(cur) {
        path.push(small.child_index(cur));
        cur = p;
    }
    path.reverse();
    let mut cur = big_root;
    for idx in path {
        cur = big.child(cur, idx);
    }
    cur
}

/// Run the lazy fixpoint, returning all realizable summaries (≤ arity
/// `max_rank`, alphabet of the first machine). When `stop_when` matches a
/// freshly discovered summary, exploration ends early with the items found
/// so far (the matching item last) — this is what makes witness searches
/// fast even when full saturation would be exponential.
fn explore<O: Observer>(
    machines: &[&RankedQa],
    max_items: usize,
    stop_when: Option<&dyn Fn(&Item) -> bool>,
    obs: &mut O,
) -> Result<Vec<Item>> {
    let sigma = machines[0].machine().alphabet_len();
    let rank = machines[0].machine().max_rank();
    for qa in machines {
        assert_eq!(qa.machine().alphabet_len(), sigma, "mismatched alphabets");
    }
    let mut items: Vec<Item> = Vec::new();
    let mut seen: HashMap<Key, usize> = HashMap::new();
    let push =
        |items: &mut Vec<Item>, seen: &mut HashMap<Key, usize>, obs: &mut O, it: Item| -> bool {
            if seen.contains_key(&it.key) {
                return false;
            }
            seen.insert(it.key.clone(), items.len());
            items.push(it);
            obs.count(Counter::SummariesExplored, 1);
            obs.count(Counter::BudgetConsumed, 1);
            true
        };
    for a in 0..sigma {
        for marked in [false, true] {
            let it = leaf_item(machines, Symbol::from_index(a), marked);
            let hit = stop_when.is_some_and(|p| p(&it));
            push(&mut items, &mut seen, obs, it);
            if hit {
                return Ok(items);
            }
        }
    }
    // Saturate. Frontier optimization: a tuple all of whose components were
    // known in a previous round has already been processed, so each round
    // only enumerates tuples containing at least one fresh item.
    let mut old_count = 0usize;
    loop {
        if let Err(a) = obs.checkpoint() {
            obs.count(Counter::BudgetTrips, 1);
            return Err(Error::aborted(a.what, a.limit, a.actual));
        }
        obs.count(Counter::FixpointIterations, 1);
        let known = items.len();
        if known > max_items {
            obs.count(Counter::BudgetTrips, 1);
            return Err(Error::FuelExhausted {
                budget: max_items as u64,
            });
        }
        let mut added = false;
        for arity in 1..=rank {
            let mut tuple = vec![0usize; arity];
            'tuples: loop {
                if tuple.iter().any(|&i| i >= known) {
                    break 'tuples;
                }
                let fresh = tuple.iter().any(|&i| i >= old_count);
                let marks_below = tuple.iter().filter(|&&i| items[i].key.has_mark).count();
                if fresh && marks_below <= 1 {
                    for a in 0..sigma {
                        for marked in [false, true] {
                            if marked && marks_below > 0 {
                                continue;
                            }
                            let child_keys: Vec<&Key> =
                                tuple.iter().map(|&i| &items[i].key).collect();
                            let key =
                                inner_key(machines, Symbol::from_index(a), marked, &child_keys);
                            if seen.contains_key(&key) {
                                continue;
                            }
                            let it = Item {
                                key,
                                children_idx: tuple.clone(),
                            };
                            let hit = stop_when.is_some_and(|p| p(&it));
                            if push(&mut items, &mut seen, obs, it) {
                                added = true;
                            }
                            if hit {
                                return Ok(items);
                            }
                            if items.len() > max_items {
                                obs.count(Counter::BudgetTrips, 1);
                                return Err(Error::FuelExhausted {
                                    budget: max_items as u64,
                                });
                            }
                        }
                    }
                }
                let mut k = 0;
                loop {
                    if k == arity {
                        break 'tuples;
                    }
                    tuple[k] += 1;
                    if tuple[k] < known {
                        break;
                    }
                    tuple[k] = 0;
                    k += 1;
                }
            }
        }
        old_count = known;
        if !added {
            break;
        }
    }
    Ok(items)
}

/// The global verdict of machine `mi` on a summary: `Some((accepts,
/// mark_selected))`, or `None` when the run never reaches a maximal
/// root-only configuration.
fn root_verdict(qa: &RankedQa, item: &Item, mi: usize) -> Option<(bool, bool)> {
    let m = qa.machine();
    let label = item.key.label;
    let mut cur = m.initial();
    let mut visited = vec![false; m.num_states()];
    let mut sel = false;
    loop {
        match item.key.behs[mi][cur.index()] {
            Beh::Never => return None,
            Beh::Settles { state, sel: s } => {
                sel = sel || s;
                match m.root(state, label) {
                    Some(q2) => {
                        if visited[q2.index()] {
                            return None; // root-transition loop
                        }
                        visited[q2.index()] = true;
                        sel = sel || (item.key.root_marked && qa.is_selecting(q2, label));
                        cur = q2;
                    }
                    None => return Some((m.is_final(state), sel)),
                }
            }
        }
    }
}

/// Non-emptiness (Theorem 6.3, ranked case): is there a tree on which `qa`
/// selects some node? Returns a witness.
pub fn non_emptiness(qa: &RankedQa) -> Result<Option<RankedWitness>> {
    non_emptiness_with_budget(qa, DEFAULT_MAX_ITEMS)
}

/// [`non_emptiness`] with an explicit summary budget.
pub fn non_emptiness_with_budget(qa: &RankedQa, max_items: usize) -> Result<Option<RankedWitness>> {
    non_emptiness_with(qa, max_items, &mut NoopObserver)
}

/// [`non_emptiness_with_budget`] with an [`Observer`]: every summary
/// discovered by the fixpoint is a [`Counter::SummariesExplored`] (and one
/// unit of [`Counter::BudgetConsumed`]), outer rounds are
/// [`Counter::FixpointIterations`], and the witness size (when non-empty)
/// lands in [`Series::WitnessSize`]. With [`NoopObserver`] this
/// monomorphizes to exactly `non_emptiness_with_budget`.
pub fn non_emptiness_with<O: Observer>(
    qa: &RankedQa,
    max_items: usize,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    let hit = |it: &Item| it.key.has_mark && matches!(root_verdict(qa, it, 0), Some((true, true)));
    obs.phase_start("summary fixpoint");
    let items = explore(&[qa], max_items, Some(&hit), obs);
    obs.phase_end("summary fixpoint");
    let items = items?;
    match items.last() {
        Some(it) if hit(it) => {
            obs.phase_start("witness materialization");
            let (tree, mark) = materialize(&items, items.len() - 1);
            obs.record(Series::WitnessSize, tree.num_nodes() as u64);
            obs.phase_end("witness materialization");
            Ok(Some(RankedWitness {
                tree,
                node: mark.expect("has_mark"),
            }))
        }
        _ => Ok(None),
    }
}

/// Containment: `A₁(t) ⊆ A₂(t)` for every ranked tree? `Ok(None)` when
/// contained; `Ok(Some(w))` gives a violation (selected by `A₁`, not `A₂`).
pub fn containment(a1: &RankedQa, a2: &RankedQa) -> Result<Option<RankedWitness>> {
    containment_with_budget(a1, a2, DEFAULT_MAX_ITEMS)
}

/// [`containment`] with an explicit budget.
pub fn containment_with_budget(
    a1: &RankedQa,
    a2: &RankedQa,
    max_items: usize,
) -> Result<Option<RankedWitness>> {
    containment_with(a1, a2, max_items, &mut NoopObserver)
}

/// [`containment_with_budget`] with an [`Observer`] (same event vocabulary
/// as [`non_emptiness_with`]).
pub fn containment_with<O: Observer>(
    a1: &RankedQa,
    a2: &RankedQa,
    max_items: usize,
    obs: &mut O,
) -> Result<Option<RankedWitness>> {
    let hit = |it: &Item| {
        it.key.has_mark
            && matches!(root_verdict(a1, it, 0), Some((true, true)))
            && !matches!(root_verdict(a2, it, 1), Some((true, true)))
    };
    obs.phase_start("summary fixpoint");
    let items = explore(&[a1, a2], max_items, Some(&hit), obs);
    obs.phase_end("summary fixpoint");
    let items = items?;
    match items.last() {
        Some(it) if hit(it) => {
            obs.phase_start("witness materialization");
            let (tree, mark) = materialize(&items, items.len() - 1);
            obs.record(Series::WitnessSize, tree.num_nodes() as u64);
            obs.phase_end("witness materialization");
            Ok(Some(RankedWitness {
                tree,
                node: mark.expect("has_mark"),
            }))
        }
        _ => Ok(None),
    }
}

/// Equivalence: same query? `Ok(None)` when equivalent; otherwise the
/// violation and whether the left side selected it.
pub fn equivalence(a1: &RankedQa, a2: &RankedQa) -> Result<Option<(RankedWitness, bool)>> {
    if let Some(w) = containment(a1, a2)? {
        return Ok(Some((w, true)));
    }
    if let Some(w) = containment(a2, a1)? {
        return Ok(Some((w, false)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_core::ranked::query::example_4_4;
    use qa_core::ranked::RankedQa;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    #[test]
    fn example_4_4_is_nonempty() {
        let a = alpha();
        let qa = example_4_4(&a);
        let w = non_emptiness(&qa).unwrap().expect("non-empty");
        // verify against the run semantics
        let selected = qa.query(&w.tree).unwrap();
        assert!(selected.contains(&w.node), "{}", w.tree.render(&a));
    }

    #[test]
    fn deselected_automaton_is_empty() {
        let a = alpha();
        let machine = qa_core::ranked::twoway::example_4_2(&a);
        let qa = RankedQa::new(machine); // no selections at all
        assert!(non_emptiness(&qa).unwrap().is_none());
    }

    #[test]
    fn containment_detects_strictness() {
        let a = alpha();
        let full = example_4_4(&a);
        // restricted: only select AND gates evaluating to 1
        let mut restricted = example_4_4(&a);
        let or = a.symbol("OR");
        for i in 0..restricted.machine().num_states() {
            restricted.set_selecting(StateId::from_index(i), or, false);
        }
        assert!(containment(&restricted, &full).unwrap().is_none());
        let w = containment(&full, &restricted).unwrap().expect("violation");
        assert!(full.query(&w.tree).unwrap().contains(&w.node));
        assert!(!restricted.query(&w.tree).unwrap().contains(&w.node));
    }

    #[test]
    fn equivalence_is_reflexive() {
        let a = alpha();
        let qa = example_4_4(&a);
        assert!(equivalence(&qa, &qa.clone()).unwrap().is_none());
    }

    #[test]
    fn fixpoint_agrees_with_bounded_oracle() {
        let a = alpha();
        let qa = example_4_4(&a);
        // brute-force: smallest selected (tree, node) pairs over tiny trees
        let brute = crate::bounded::non_emptiness_bounded(
            &|t| qa.query(t).unwrap_or_default(),
            a.len(),
            2,
            5,
        );
        let exact = non_emptiness(&qa).unwrap();
        assert_eq!(brute.is_some(), exact.is_some());
    }

    #[test]
    fn budget_overflow_is_reported() {
        // An empty query can never exit early, so saturation must hit the
        // budget.
        let a = alpha();
        let machine = qa_core::ranked::twoway::example_4_2(&a);
        let qa = RankedQa::new(machine); // selects nothing
        assert!(matches!(
            non_emptiness_with_budget(&qa, 3),
            Err(Error::FuelExhausted { .. })
        ));
    }
}
