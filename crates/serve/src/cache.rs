//! [`QueryCache`]: compile-once caching of MSO queries, keyed by formula
//! hash and alphabet size.
//!
//! Compiling an MSO formula to a query automaton is the expensive,
//! non-elementary direction of the paper's equivalence; evaluating the
//! compiled automaton is linear per document (Figure 6). A serving
//! daemon therefore compiles once and evaluates many times: the cache
//! key is `(FNV-1a(formula), σ)` where `σ` is the shared alphabet size
//! *after* parsing the formula. The `σ` component is what keeps a
//! growing document store sound — ingesting a document with fresh
//! labels bumps `σ`, old entries stop matching, and the next request
//! recompiles against the larger alphabet instead of running an
//! automaton that has never seen the new symbols.
//!
//! Compilation is deterministic, so a recompile after eviction (or a
//! cold restart) yields the same automaton and byte-identical query
//! results — the cache changes latency, never answers.

use std::collections::BTreeMap;
use std::sync::Arc;

use qa_base::{Alphabet, Error, Result};
use qa_mso::{parse, PreparedUnary};
use qa_obs::{Counter, Metrics};

/// One compiled query, shared between the cache and in-flight requests.
#[derive(Debug)]
pub struct CompiledQuery {
    /// The formula text the query was compiled from (trimmed).
    pub formula: String,
    /// FNV-1a 64 of the trimmed formula text.
    pub hash: u64,
    /// The free node variable the query selects.
    pub var: String,
    /// Alphabet size the automaton was compiled over.
    pub sigma: usize,
    /// States of the compiled (pre-totalization) automaton.
    pub states: usize,
    /// The totalized evaluator (Figure 6 two-pass, FCNS-encoded).
    pub prepared: PreparedUnary,
}

#[derive(Debug)]
struct Entry {
    query: Arc<CompiledQuery>,
    last_used: u64,
    hits: u64,
}

/// Bounded LRU cache of [`CompiledQuery`]s; see the module docs.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    entries: BTreeMap<(u64, usize), Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl QueryCache {
    /// A cache holding at most `capacity` compiled queries (clamped to at
    /// least one); the least-recently-used entry is evicted beyond that.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Compile `formula` against the current `alphabet`, or answer from
    /// the cache when the same formula was already compiled against an
    /// alphabet of the same size. Parsing interns any labels the formula
    /// mentions, so compilation and the documents agree on symbol ids.
    ///
    /// Cache traffic is counted on `metrics` when attached:
    /// `cache_hits` / `cache_misses` per lookup, `query_compiles` per
    /// compile paid, `cache_evictions` per LRU eviction.
    ///
    /// ```
    /// use qa_base::Alphabet;
    /// use qa_serve::QueryCache;
    ///
    /// let mut cache = QueryCache::new(8);
    /// let mut alphabet = Alphabet::from_names(["book", "author"]);
    /// let q = cache.compile("label(v, author)", &mut alphabet, None).unwrap();
    /// assert!(q.states > 0);
    ///
    /// // Same formula, same alphabet: answered from the cache, and the
    /// // compiled automaton is literally the same object.
    /// let again = cache.compile("label(v, author)", &mut alphabet, None).unwrap();
    /// assert_eq!(cache.stats(), (1, 1, 0)); // hits, misses, evictions
    /// assert_eq!(q.hash, again.hash);
    /// ```
    pub fn compile(
        &mut self,
        formula: &str,
        alphabet: &mut Alphabet,
        metrics: Option<&Metrics>,
    ) -> Result<Arc<CompiledQuery>> {
        let text = formula.trim();
        let hash = qa_obs::fnv1a64(text.as_bytes());
        // Parse first: it interns the formula's labels, fixing the σ the
        // compiled automaton must cover. Parsing is linear in the formula
        // and idempotent on the alphabet, so paying it on hits too keeps
        // the key exact.
        let parsed = parse(text, alphabet)?;
        let sigma = alphabet.len();
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&(hash, sigma)) {
            entry.last_used = self.tick;
            entry.hits += 1;
            self.hits += 1;
            if let Some(m) = metrics {
                m.count(Counter::CacheHits, 1);
            }
            return Ok(Arc::clone(&entry.query));
        }
        self.misses += 1;
        if let Some(m) = metrics {
            m.count(Counter::CacheMisses, 1);
        }
        let free = parsed.free_vars();
        let node_vars: Vec<&String> = free
            .iter()
            .filter(|v| v.chars().next().is_some_and(|c| c.is_lowercase()))
            .collect();
        let var = match (node_vars.as_slice(), free.len()) {
            ([v], 1) => (*v).clone(),
            _ => {
                let msg = format!(
                    "a unary query needs exactly one free node variable, found {free:?} in `{text}`"
                );
                return Err(Error::parse("query", msg));
            }
        };
        let automaton = qa_mso::unranked::compile_unary(&parsed, &var, sigma)?;
        let states = automaton.num_states();
        let prepared = PreparedUnary::new(&automaton, sigma);
        if let Some(m) = metrics {
            m.count(Counter::QueryCompiles, 1);
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty cache at capacity");
            self.entries.remove(&lru);
            self.evictions += 1;
            if let Some(m) = metrics {
                m.count(Counter::CacheEvictions, 1);
            }
        }
        let query = Arc::new(CompiledQuery {
            formula: text.to_string(),
            hash,
            var,
            sigma,
            states,
            prepared,
        });
        self.entries.insert(
            (hash, sigma),
            Entry {
                query: Arc::clone(&query),
                last_used: self.tick,
                hits: 0,
            },
        );
        Ok(query)
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of resident compiled queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident queries with their per-entry hit counts, in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&Arc<CompiledQuery>, u64)> + '_ {
        self.entries.values().map(|e| (&e.query, e.hits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> Alphabet {
        Alphabet::from_names(["a", "b", "c"])
    }

    #[test]
    fn recompile_after_eviction_is_idempotent() {
        // Capacity-one cache: compiling a second formula evicts the
        // first; recompiling the first must rebuild the identical
        // automaton and answer queries byte-identically.
        let mut a = alphabet();
        let mut cache = QueryCache::new(1);
        let t = qa_trees::sexpr::from_sexpr("(a (b c) (b b))", &mut a).unwrap();

        let q1 = cache.compile("label(v, b)", &mut a, None).unwrap();
        let cold: Vec<_> = q1.prepared.eval_unranked(&t);
        let states_cold = q1.states;

        cache.compile("label(v, c)", &mut a, None).unwrap();
        assert_eq!(cache.len(), 1, "capacity 1 evicts");
        assert_eq!(cache.stats().2, 1, "one eviction");

        let q1_again = cache.compile("label(v, b)", &mut a, None).unwrap();
        assert_eq!(q1_again.states, states_cold, "same compiled automaton");
        assert_eq!(q1_again.hash, q1.hash);
        let warm: Vec<_> = q1_again.prepared.eval_unranked(&t);
        assert_eq!(cold, warm, "byte-identical results across recompile");
    }

    #[test]
    fn alphabet_growth_misses_and_recompiles() {
        let mut a = alphabet();
        let mut cache = QueryCache::new(8);
        let q = cache.compile("label(v, a)", &mut a, None).unwrap();
        assert_eq!(q.sigma, 3);
        // A new document label grows the alphabet; the old entry no
        // longer matches and the query recompiles over the larger σ.
        a.intern("d");
        let grown = cache.compile("label(v, a)", &mut a, None).unwrap();
        assert_eq!(grown.sigma, 4);
        assert_eq!(cache.stats(), (0, 2, 0), "growth is a miss, not a hit");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn formulas_without_a_single_free_node_variable_are_rejected() {
        let mut a = alphabet();
        let mut cache = QueryCache::new(8);
        // Sentence: no free variable at all.
        assert!(cache
            .compile("ex r. (root(r) & label(r, a))", &mut a, None)
            .is_err());
        // Two free node variables.
        assert!(cache.compile("edge(v, w)", &mut a, None).is_err());
    }

    #[test]
    fn metrics_see_hits_misses_compiles_and_evictions() {
        let mut a = alphabet();
        let m = Metrics::new();
        let mut cache = QueryCache::new(1);
        cache.compile("label(v, a)", &mut a, Some(&m)).unwrap();
        cache.compile("label(v, a)", &mut a, Some(&m)).unwrap();
        cache.compile("label(v, b)", &mut a, Some(&m)).unwrap();
        assert_eq!(m.get(Counter::CacheHits), 1);
        assert_eq!(m.get(Counter::CacheMisses), 2);
        assert_eq!(m.get(Counter::QueryCompiles), 2);
        assert_eq!(m.get(Counter::CacheEvictions), 1);
    }
}
