//! # qa-twoway
//!
//! Two-way deterministic string automata and query automata on strings —
//! Section 3 of *Query Automata* (Neven & Schwentick):
//!
//! - [`TwoDfa`]: two-way deterministic finite automata over endmarked tapes
//!   `⊳ w ⊲` (Definition 3.1), with loop detection and full run records.
//! - [`StringQa`]: query automata on strings — a 2DFA plus a selection
//!   function (Definition 3.2).
//! - [`Gsqa`]: generalized string query automata that output one symbol of an
//!   output alphabet Γ at every position (Definition 3.5); these compute the
//!   stay transitions of strong unranked query automata (Definition 5.11).
//! - [`behavior`]: the behavior functions `f←`, `first` and `Assumed` of the
//!   Theorem 3.9 proof, computed by the paper's local recurrences.
//! - [`shepherdson`]: exact 2DFA → one-way DFA conversion via extended
//!   behavior summaries (Shepherdson's construction).
//! - [`crossing`]: crossing-sequence NFA constructions — the language of a
//!   2DFA, and the *selection language* `{(w, i) | i ∈ M(w)}` of a string
//!   query automaton over a marked alphabet. These power the decision
//!   procedures of Section 6.
//! - [`hopcroft_ullman`]: Lemma 3.10 — composing a left-to-right and a
//!   right-to-left DFA into a single two-way machine ([`Bimachine`] is the
//!   declarative form, [`hopcroft_ullman::compose`] builds the actual GSQA).

pub mod behavior;
pub mod cache;
pub mod crossing;
pub mod gsqa;
pub mod hopcroft_ullman;
pub mod shepherdson;
pub mod string_qa;
pub mod tape;
pub mod twodfa;

pub use cache::CrossingCache;
pub use gsqa::Gsqa;
pub use hopcroft_ullman::Bimachine;
pub use string_qa::StringQa;
pub use tape::Tape;
pub use twodfa::{Dir, RunRecord, TwoDfa, TwoDfaBuilder};

pub use qa_strings::StateId;
