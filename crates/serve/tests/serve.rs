//! End-to-end tests of the serving daemon over real sockets: parity with
//! the batch evaluation path, admission-control sheds, cold/warm
//! byte-identical answers, and a well-formed `/metrics` exposition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use qa_obs::json::{self, Value};
use qa_pulse::{http_get, http_request, validate_prometheus, HttpTimeouts};
use qa_serve::{DocStore, QueryCache, ServeConfig, ServeDaemon};

fn timeouts() -> HttpTimeouts {
    HttpTimeouts {
        connect: Duration::from_secs(5),
        io: Duration::from_secs(30),
    }
}

fn quiet_config() -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        // No background scrape: these tests assert exact metric values.
        scrape_every_ms: 0,
        ..ServeConfig::default()
    }
}

fn put_doc(addr: std::net::SocketAddr, name: &str, text: &str) -> qa_pulse::HttpResponse {
    http_request(
        addr,
        "PUT",
        &format!("/doc?name={name}"),
        "text/plain",
        text,
        timeouts(),
    )
    .expect("PUT /doc transport")
}

fn post_query(addr: std::net::SocketAddr, body: &str) -> qa_pulse::HttpResponse {
    http_request(addr, "POST", "/query", "application/json", body, timeouts())
        .expect("POST /query transport")
}

fn selected_of(body: &str) -> Vec<u64> {
    let v = json::parse(body).expect("response is JSON");
    v.get("selected")
        .and_then(Value::as_arr)
        .map(|items| items.iter().filter_map(Value::as_u64).collect())
        .expect("response has a selected array")
}

#[test]
fn served_node_sets_match_the_batch_evaluation_under_concurrency() {
    let daemon = ServeDaemon::start(quiet_config()).expect("daemon starts");
    let addr = daemon.addr();

    let corpus = [
        ("left", "(a (b c) (b (a c)))"),
        ("right", "(b (a (b b)) c)"),
        ("wide", "(a b b c b a)"),
    ];
    for (name, text) in corpus {
        assert_eq!(put_doc(addr, name, text).status, 200);
    }
    let formulas = ["label(v, b)", "leaf(v) & label(v, c)"];

    // The same answers through the in-process batch pipeline.
    let mut store = DocStore::new();
    for (name, text) in corpus {
        store.ingest(name, text).expect("batch ingest");
    }
    let mut cache = QueryCache::new(8);
    let mut expected = Vec::new();
    for formula in formulas {
        let q = cache
            .compile(formula, store.alphabet_mut(), None)
            .expect("batch compile");
        for (name, _) in corpus {
            let doc = store.get(name).expect("ingested");
            let nodes: Vec<u64> = q
                .prepared
                .eval_unranked(&doc.tree)
                .into_iter()
                .map(|v| v.index() as u64)
                .collect();
            expected.push((formula, name, nodes));
        }
    }

    // Fire every (formula, doc) pair several times concurrently.
    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for round in 0..4 {
            for (formula, name, nodes) in &expected {
                let mismatches = &mismatches;
                scope.spawn(move || {
                    let body = json::object(|w| {
                        w.field_str("formula", formula);
                        w.field_str("doc", name);
                        w.field_bool("why", round == 0);
                    });
                    let resp = post_query(addr, &body);
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    if &selected_of(&resp.body) != nodes {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        }
    });
    assert_eq!(mismatches.load(Ordering::Relaxed), 0, "served == batch");
    daemon.shutdown();
}

#[test]
fn zero_queue_depth_sheds_with_retry_after_and_never_hangs() {
    let cfg = ServeConfig {
        // Depth 0: every query that reaches admission control sheds.
        queue_depth: 0,
        ..quiet_config()
    };
    let daemon = ServeDaemon::start(cfg).expect("daemon starts");
    let addr = daemon.addr();
    assert_eq!(put_doc(addr, "d", "(a b c)").status, 200);

    let shed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let shed = &shed;
            scope.spawn(move || {
                let body = json::object(|w| {
                    w.field_str("formula", "label(v, b)");
                    w.field_str("doc", "d");
                });
                let resp = post_query(addr, &body);
                assert_eq!(resp.status, 429, "depth 0 sheds everything");
                assert_eq!(resp.retry_after, Some(1), "shed carries Retry-After");
                shed.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(shed.load(Ordering::Relaxed), 16);
    assert_eq!(daemon.metrics().get(qa_obs::Counter::RequestsShed), 16);
    daemon.shutdown();
}

#[test]
fn tiny_queue_depth_answers_only_200_or_429_and_sheds_at_least_once() {
    let cfg = ServeConfig {
        queue_depth: 1,
        eval_workers: 1,
        ..quiet_config()
    };
    let daemon = ServeDaemon::start(cfg).expect("daemon starts");
    let addr = daemon.addr();
    // A biggish document keeps each evaluation busy long enough for the
    // burst to pile onto the depth-1 queue.
    let big = {
        let mut s = String::from("(a");
        for i in 0..4000 {
            s.push_str(if i % 3 == 0 { " (b c)" } else { " b" });
        }
        s.push(')');
        s
    };
    assert_eq!(put_doc(addr, "big", &big).status, 200);

    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..32 {
            let (ok, shed) = (&ok, &shed);
            scope.spawn(move || {
                let body = json::object(|w| {
                    w.field_str("formula", "label(v, b)");
                    w.field_str("doc", "big");
                });
                let resp = post_query(addr, &body);
                match resp.status {
                    200 => ok.fetch_add(1, Ordering::Relaxed),
                    429 => {
                        assert!(resp.retry_after.is_some());
                        shed.fetch_add(1, Ordering::Relaxed)
                    }
                    other => panic!("contract is 200-or-429, got {other}: {}", resp.body),
                };
            });
        }
    });
    assert_eq!(
        ok.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
        32
    );
    assert!(ok.load(Ordering::Relaxed) > 0, "some requests succeed");
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "depth 1 under a 32-burst sheds"
    );
    daemon.shutdown();
}

#[test]
fn cold_and_warm_responses_are_byte_identical_modulo_latency() {
    let daemon = ServeDaemon::start(quiet_config()).expect("daemon starts");
    let addr = daemon.addr();
    assert_eq!(put_doc(addr, "d", "(a (b c) b)").status, 200);
    let body = json::object(|w| {
        w.field_str("formula", "label(v, b)");
        w.field_str("doc", "d");
        w.field_bool("why", true);
    });

    // First answer compiles (miss), the second hits the cache; everything
    // but the latency field must be byte-identical.
    let strip_micros = |resp_body: &str| -> String {
        resp_body
            .split(",\"micros\"")
            .next()
            .expect("has a micros field")
            .to_string()
    };
    let cold = post_query(addr, &body);
    let warm = post_query(addr, &body);
    assert_eq!((cold.status, warm.status), (200, 200));
    assert_eq!(strip_micros(&cold.body), strip_micros(&warm.body));
    assert_eq!(daemon.metrics().get(qa_obs::Counter::CacheHits), 1);
    assert_eq!(daemon.metrics().get(qa_obs::Counter::CacheMisses), 1);
    daemon.shutdown();
}

#[test]
fn registered_queries_answer_by_id_and_show_in_the_catalogs() {
    let daemon = ServeDaemon::start(quiet_config()).expect("daemon starts");
    let addr = daemon.addr();
    assert_eq!(put_doc(addr, "d", "(a b (b c))").status, 200);

    // Register without a doc: compile-only receipt.
    let reg = post_query(
        addr,
        &json::object(|w| {
            w.field_str("formula", "label(v, b)");
            w.field_str("register", "all-bs");
        }),
    );
    assert_eq!(reg.status, 200, "{}", reg.body);

    // Query by id only.
    let by_id = post_query(
        addr,
        &json::object(|w| {
            w.field_str("id", "all-bs");
            w.field_str("doc", "d");
        }),
    );
    assert_eq!(by_id.status, 200, "{}", by_id.body);
    assert_eq!(selected_of(&by_id.body), vec![1, 2]);

    let unknown = post_query(
        addr,
        &json::object(|w| {
            w.field_str("id", "nope");
            w.field_str("doc", "d");
        }),
    );
    assert_eq!(unknown.status, 404);

    let queries = http_get(addr, "/queries", timeouts()).expect("GET /queries");
    assert!(queries.body.contains("all-bs"), "{}", queries.body);
    let docs = http_get(addr, "/docs", timeouts()).expect("GET /docs");
    assert!(docs.body.contains("\"name\":\"d\""), "{}", docs.body);
    daemon.shutdown();
}

#[test]
fn explain_true_profiles_the_run_and_feeds_get_explain_and_the_event_log() {
    let events_path = std::env::temp_dir().join(format!(
        "qa-serve-events-{}-{:x}.jsonl",
        std::process::id(),
        qa_obs::fnv1a64(b"explain-test")
    ));
    let cfg = ServeConfig {
        events_path: Some(events_path.to_string_lossy().into_owned()),
        ..quiet_config()
    };
    let daemon = ServeDaemon::start(cfg).expect("daemon starts");
    let addr = daemon.addr();
    assert_eq!(put_doc(addr, "d", "(a (b c) (b b))").status, 200);

    // explain:true returns the per-state profile inline.
    let explained = post_query(
        addr,
        &json::object(|w| {
            w.field_str("formula", "label(v, b)");
            w.field_str("doc", "d");
            w.field_str("register", "all-bs");
            w.field_bool("explain", true);
        }),
    );
    assert_eq!(explained.status, 200, "{}", explained.body);
    let v = json::parse(&explained.body).expect("response is JSON");
    assert!(v.get("explain").is_some(), "{}", explained.body);
    let hash = v
        .get("query")
        .and_then(Value::as_str)
        .expect("query hash in response")
        .to_string();

    // A plain request carries no explain payload and still profiles
    // nothing (the scope arm is a no-op unless asked for).
    let plain = post_query(
        addr,
        &json::object(|w| {
            w.field_str("formula", "label(v, b)");
            w.field_str("doc", "d");
        }),
    );
    assert_eq!(plain.status, 200, "{}", plain.body);
    assert!(json::parse(&plain.body).unwrap().get("explain").is_none());

    // The accumulated profile answers GET /explain: merged, by hash, by
    // registered id; unknown names 404.
    let merged = http_get(addr, "/explain", timeouts()).expect("GET /explain");
    assert_eq!(merged.status, 200, "{}", merged.body);
    assert!(merged.body.contains("machine dbtau") || merged.body.contains("machine "));
    let by_hash = http_get(addr, &format!("/explain?query={hash}"), timeouts()).expect("by hash");
    assert_eq!(by_hash.status, 200, "{}", by_hash.body);
    let by_id = http_get(addr, "/explain?query=all-bs", timeouts()).expect("by id");
    assert_eq!(by_id.status, 200, "{}", by_id.body);
    assert_eq!(by_id.body, by_hash.body, "id resolves to the same profile");
    let as_json = http_get(
        addr,
        &format!("/explain?query={hash}&format=json"),
        timeouts(),
    )
    .expect("json");
    assert_eq!(as_json.status, 200);
    assert!(json::parse(&as_json.body).is_ok(), "{}", as_json.body);
    let unknown = http_get(addr, "/explain?query=nope", timeouts()).expect("unknown");
    assert_eq!(unknown.status, 404);

    // Both served queries emitted wide events: the live ring and the
    // events.jsonl file agree, and the counters are real work.
    let tail = http_get(addr, "/events?n=10", timeouts()).expect("GET /events");
    let ring_events = qa_flight::parse_events(&tail.body).expect("ring parses");
    assert_eq!(ring_events.len(), 2, "{}", tail.body);
    daemon.shutdown();
    let file_text = std::fs::read_to_string(&events_path).expect("events file written");
    let file_events = qa_flight::parse_events(&file_text).expect("file parses");
    assert_eq!(file_events.len(), 2);
    for (ev, sampled) in file_events.iter().zip([true, false]) {
        assert_eq!(ev.run, "qa-serve");
        assert_eq!(ev.worker, "serve");
        assert_eq!(ev.outcome, "ok");
        assert_eq!(ev.sampled, sampled, "sampled mirrors the explain flag");
        assert_eq!(ev.doc_index, 0);
        assert_eq!(ev.doc_nodes, 5);
        assert_eq!(ev.selected, 3, "three b-labelled nodes");
        assert!(ev.steps > 0, "evaluation counted steps");
    }
    assert_eq!(
        file_events[0].query, "all-bs",
        "registered requests are named by id"
    );
    assert_eq!(file_events[1].query, hash, "inline requests by hash");
    let _ = std::fs::remove_file(&events_path);
}

#[test]
fn metrics_expose_the_serving_families_as_valid_prometheus() {
    let daemon = ServeDaemon::start(quiet_config()).expect("daemon starts");
    let addr = daemon.addr();
    assert_eq!(put_doc(addr, "d", "(a b)").status, 200);
    let resp = post_query(
        addr,
        &json::object(|w| {
            w.field_str("formula", "label(v, b)");
            w.field_str("doc", "d");
        }),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);

    let scrape = http_get(addr, "/metrics", timeouts()).expect("GET /metrics");
    assert!(scrape.is_ok());
    validate_prometheus(&scrape.body).expect("well-formed exposition");
    for family in [
        "qa_serve_http_requests_total",
        "qa_serve_doc_ingests_total",
        "qa_serve_query_compiles_total",
        "qa_serve_cache_misses_total",
        "qa_serve_query_micros",
        "qa_serve_ingest_micros",
    ] {
        assert!(scrape.body.contains(family), "missing {family} in scrape");
    }
    daemon.shutdown();
}

#[test]
fn soak_binary_smokes_clean_with_a_generous_depth() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_qa-serve"))
        .args([
            "--soak",
            "--clients",
            "4",
            "--requests",
            "16",
            "--docs",
            "3",
            "--doc-nodes",
            "80",
            "--queue-depth",
            "512",
            "--forbid-shed",
        ])
        .output()
        .expect("qa-serve --soak runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("offered"), "prints the table: {stdout}");
}

#[test]
fn soak_binary_enforces_the_shed_expectation_on_a_tiny_depth() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_qa-serve"))
        .args([
            "--soak",
            "--clients",
            "8",
            "--requests",
            "16",
            "--docs",
            "3",
            "--doc-nodes",
            "600",
            "--workers",
            "1",
            "--queue-depth",
            "1",
            "--expect-shed",
        ])
        .output()
        .expect("qa-serve --soak runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "tiny depth must shed at least once\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}
