//! Emit `BENCH_obs.json`: step-count metrics for one representative
//! workload per instrumented subsystem, captured through a live
//! [`qa_obs::Metrics`] observer.
//!
//! Unlike the `eN_*` wall-clock benches, every number here is a
//! deterministic event count (steps, head reversals, table lookups,
//! summaries, fixpoint rounds …), so the file is diffable across machines
//! and commits — a regression in an algorithm's *work* shows up even when
//! the wall clock does not move.
//!
//! Usage:
//!
//! ```text
//! bench_obs [out.json]                 # write the report (default BENCH_obs.json)
//! bench_obs --check [--baseline FILE] [--tolerance F]
//! ```
//!
//! `--check` regenerates the report in memory and gates it against the
//! checked-in baseline (default `BENCH_obs.json`, tolerance 0.05 relative):
//! any counter or series total drifting beyond tolerance — or appearing /
//! disappearing — fails with exit code 1. CI runs this so a change that
//! silently alters an algorithm's *work* cannot land unnoticed.

use qa_base::{Alphabet, Symbol};
use qa_obs::json::{object, ObjectWriter};
use qa_obs::Metrics;
use qa_strings::Dfa;
use qa_trees::Tree;
use qa_twoway::Bimachine;

/// One scenario: run `work` against a fresh metrics registry and serialize
/// the resulting counters/series under `name`.
fn scenario(w: &mut ObjectWriter, name: &str, work: impl FnOnce(&Metrics)) {
    let metrics = Metrics::new();
    work(&metrics);
    w.field_raw(name, &metrics.to_json());
    println!("  {name}: done");
}

/// The e8 bimachine: a merging left DFA (exercises the γ dives of the
/// Lemma 3.10 composition).
fn sample_bimachine() -> Bimachine {
    let sym = Symbol::from_index;
    let mut left = Dfa::new(2);
    let s0 = left.add_state();
    let s1 = left.add_state();
    let s2 = left.add_state();
    left.set_initial(s0);
    for (i, s) in [s0, s1, s2].into_iter().enumerate() {
        left.set_transition(s, sym(0), s0); // merge on 0
        let rot = [s1, s2, s0][i];
        left.set_transition(s, sym(1), rot); // rotate on 1
    }
    let mut right = Dfa::new(2);
    let r0 = right.add_state();
    let r1 = right.add_state();
    right.set_initial(r0);
    for s in [r0, r1] {
        right.set_transition(s, sym(0), r1);
        right.set_transition(s, sym(1), r0);
    }
    Bimachine::new(left, right, 12, |p, q, s| {
        (p.index() * 4 + q.index() * 2 + s.index()) as u32
    })
    .unwrap()
}

/// Run every scenario and serialize the full report.
fn generate_report() -> String {
    object(|w| {
        // Example 3.4 string query: the literal two-way run.
        scenario(w, "example_3_4_string_query", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            let word = qa_bench::random_word(512, 34);
            qa.query_with(&word, &mut m.observer()).unwrap();
        });

        // The same query via the Theorem 3.9 behavior recurrences.
        scenario(w, "example_3_4_via_behavior", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            let word = qa_bench::random_word(512, 34);
            qa.query_via_behavior_with(&word, &mut m.observer());
        });

        // Lemma 3.10: Hopcroft–Ullman composition, then a run of the
        // composed machine.
        scenario(w, "lemma_3_10_composition", |m| {
            let bim = sample_bimachine();
            let gsqa = qa_twoway::hopcroft_ullman::compose_with(&bim, &mut m.observer()).unwrap();
            let word = qa_bench::random_word(256, 35);
            gsqa.run_with(&word, &mut m.observer()).unwrap();
        });

        // Example 4.4: ranked circuit query on a random circuit.
        scenario(w, "example_4_4_ranked_query", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::ranked::query::example_4_4(&sigma);
            let t = qa_bench::random_circuit(255, 36);
            qa.query_with(&t, &mut m.observer()).unwrap();
        });

        // Example 5.9: unranked circuit query (slender down transitions).
        scenario(w, "example_5_9_unranked_query", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::unranked::query::example_5_9(&sigma);
            let or = sigma.symbol("OR");
            let zero = sigma.symbol("0");
            let one = sigma.symbol("1");
            let mut t = Tree::leaf(or);
            for i in 0..256usize {
                t.add_child(t.root(), if i % 2 == 0 { zero } else { one });
            }
            qa.query_with(&t, &mut m.observer()).unwrap();
        });

        // Example 5.14: the SQAu — stay transitions are the metric here.
        scenario(w, "example_5_14_sqau_query", |m| {
            let sigma = qa_bench::binary_alphabet();
            let qa = qa_core::unranked::query::example_5_14(&sigma);
            let one = sigma.symbol("1");
            let zero = sigma.symbol("0");
            let mut t = Tree::leaf(zero);
            for i in 0..256usize {
                t.add_child(t.root(), if i % 3 == 0 { one } else { zero });
            }
            qa.query_with(&t, &mut m.observer()).unwrap();
        });

        // Figure 5: two-pass ranked unary MSO evaluation.
        scenario(w, "fig5_ranked_eval", |m| {
            let mut a = Alphabet::from_names(["s", "t"]);
            let phi = qa_mso::parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
            let d = qa_mso::compile_ranked::compile_unary(&phi, "v", 2, 2).unwrap();
            let t = qa_trees::generate::complete(a.symbol("s"), 2, 8);
            qa_mso::query_eval::eval_unary_ranked_with(&d, &t, 2, &mut m.observer());
        });

        // Lemma 5.2: NBTAu non-emptiness fixpoint + witness assembly.
        scenario(w, "lemma_5_2_emptiness", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let n = qa_core::unranked::Nbtau::boolean_circuit(&sigma);
            qa_core::unranked::emptiness::is_nonempty_with(&n, &mut m.observer());
            qa_core::unranked::emptiness::witness_with(&n, &mut m.observer());
        });

        // Theorem 6.3: query non-emptiness via the summary fixpoint.
        scenario(w, "thm_6_3_nonemptiness", |m| {
            let sigma = qa_bench::circuit_alphabet();
            let qa = qa_core::ranked::query::example_4_4(&sigma);
            qa_decision::ranked_decisions::non_emptiness_with(
                &qa,
                qa_decision::ranked_decisions::DEFAULT_MAX_ITEMS,
                &mut m.observer(),
            )
            .unwrap();
        });

        // §6 string decisions: equivalence via crossing-sequence NFAs.
        scenario(w, "string_equivalence", |m| {
            let a = Alphabet::from_names(["0", "1"]);
            let qa = qa_twoway::string_qa::example_3_4_qa(&a);
            qa_decision::string_decisions::equivalence_with(&qa, &qa, &mut m.observer()).unwrap();
            qa_decision::string_decisions::non_emptiness_with(&qa, &mut m.observer()).unwrap();
        });

        // Proposition 6.1: tiling reduction size.
        scenario(w, "prop_6_1_tiling_reduction", |m| {
            let inst = qa_decision::tiling::easy_instance(3);
            qa_decision::tiling::to_tree_automaton_with(&inst, &mut m.observer()).unwrap();
        });
    })
}

/// Regenerate the report and compare it against `baseline_path`; returns
/// the number of metrics that drifted beyond `tolerance`.
fn check(baseline_path: &str, tolerance: f64) -> usize {
    println!("# bench_obs --check (baseline {baseline_path}, tolerance {tolerance})");
    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = qa_obs::json::parse(&baseline_text).expect("parse baseline");
    let current = qa_obs::json::parse(&generate_report()).expect("parse generated report");
    let drifts = qa_probe::gate::compare_reports(&baseline, &current, tolerance);
    if drifts.is_empty() {
        println!("gate: OK — all step counts within tolerance");
    } else {
        for d in &drifts {
            println!("gate: DRIFT {}", d.render());
        }
        println!(
            "gate: {} metric(s) drifted; regenerate {baseline_path} if intentional",
            drifts.len()
        );
    }
    drifts.len()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        let flag_val = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let baseline = flag_val("--baseline").unwrap_or_else(|| "BENCH_obs.json".to_string());
        let tolerance: f64 = flag_val("--tolerance")
            .map(|t| t.parse().expect("--tolerance takes a number"))
            .unwrap_or(0.05);
        if check(&baseline, tolerance) > 0 {
            std::process::exit(1);
        }
        return;
    }

    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    println!("# bench_obs -> {out_path}");
    let report = generate_report();
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("wrote {out_path}");
}
