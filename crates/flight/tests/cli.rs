//! End-to-end tests of the `qa-fleet` binary: a green smoke run, a
//! deterministic rerun, and a budget-tripped fleet leaving a post-mortem.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qa_fleet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args(args)
        .output()
        .expect("spawn qa-fleet")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

#[test]
fn smoke_run_succeeds_and_writes_exports() {
    let dir = tmp("fleet-smoke");
    let out = qa_fleet(&["--smoke", "--out-dir", &dir]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("qa-fleet: 12 run(s)"), "{stdout}");
    assert!(stdout.contains("example-3-4"), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");

    let dir = PathBuf::from(&dir);
    let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
    assert!(summary.contains("steps   p50"), "{summary}");
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(prom.contains("qa_fleet_steps_total"), "{prom}");
    let trace = std::fs::read_to_string(dir.join("trace-0.json")).unwrap();
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(
        !dir.join("postmortem.txt").exists(),
        "green run must not leave a post-mortem"
    );
}

#[test]
fn reruns_with_the_same_seed_are_byte_identical() {
    let a = tmp("fleet-det-a");
    let b = tmp("fleet-det-b");
    for dir in [&a, &b] {
        let out = qa_fleet(&[
            "--queries",
            "4",
            "--docs",
            "2",
            "--size",
            "64",
            "--seed",
            "9",
            "--sample-every",
            "2",
            "--out-dir",
            dir,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Counters, documents and sampling are all seeded, and the summary on
    // disk carries no wall-clock line, so both exports reproduce
    // byte-for-byte. (The phase spans of the trace export carry wall-clock
    // values and are excluded.)
    let read = |d: &str, f: &str| std::fs::read_to_string(PathBuf::from(d).join(f)).unwrap();
    assert_eq!(read(&a, "metrics.prom"), read(&b, "metrics.prom"));
    assert_eq!(read(&a, "summary.txt"), read(&b, "summary.txt"));
    // Same runs sampled, same step counts inside the exported trace.
    let counters = |text: &str| {
        text.split("\"counters\"")
            .nth(1)
            .expect("trace has a counters event")
            .to_string()
    };
    assert_eq!(
        counters(&read(&a, "trace-0.json")),
        counters(&read(&b, "trace-0.json"))
    );
}

#[test]
fn parallel_jobs_match_sequential_byte_for_byte() {
    // The acceptance gate of the parallel executor: `--jobs 4` must leave
    // exactly the bytes `--jobs 1` leaves — same summary table, same merged
    // Prometheus registry — because outcomes land in indexed slots,
    // sampling flags are pre-drawn in job order, and counter merges
    // commute.
    let seq = tmp("fleet-jobs-1");
    let par = tmp("fleet-jobs-4");
    for (jobs, dir) in [("1", &seq), ("4", &par)] {
        let out = qa_fleet(&[
            "--queries",
            "4",
            "--docs",
            "6",
            "--size",
            "64",
            "--seed",
            "9",
            "--sample-every",
            "2",
            "--jobs",
            jobs,
            "--out-dir",
            dir,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let read = |d: &str, f: &str| std::fs::read_to_string(PathBuf::from(d).join(f)).unwrap();
    assert_eq!(read(&seq, "summary.txt"), read(&par, "summary.txt"));
    assert_eq!(read(&seq, "metrics.prom"), read(&par, "metrics.prom"));
}

#[test]
fn failed_run_flushes_partial_telemetry_mid_batch() {
    // When a worker's budget trips, summary.txt/metrics.prom must already
    // be on disk before the batch finishes; on normal exit they are
    // overwritten by the complete versions, so here (where the whole fleet
    // completes after the failure) the final summary has no PARTIAL marker
    // but both files exist and record the failure.
    let dir = tmp("fleet-partial");
    let out = qa_fleet(&[
        "--queries",
        "1",
        "--docs",
        "3",
        "--size",
        "64",
        "--max-steps",
        "20",
        "--jobs",
        "2",
        "--out-dir",
        &dir,
    ]);
    assert_eq!(out.status.code(), Some(1));
    let dir = PathBuf::from(&dir);
    let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
    assert!(summary.contains("3 failed"), "{summary}");
    assert!(std::fs::read_to_string(dir.join("metrics.prom"))
        .unwrap()
        .contains("qa_fleet_budget_trips_total"));
}

#[test]
fn tripped_budget_fails_the_fleet_and_leaves_a_post_mortem() {
    let dir = tmp("fleet-abort");
    let out = qa_fleet(&[
        "--queries",
        "1",
        "--docs",
        "2",
        "--size",
        "64",
        "--max-steps",
        "20",
        "--out-dir",
        &dir,
    ]);
    assert_eq!(out.status.code(), Some(1), "budget trips must fail the run");
    let post = std::fs::read_to_string(PathBuf::from(&dir).join("postmortem.txt")).unwrap();
    assert!(post.contains("run aborted by watchdog"), "{post}");
    assert!(post.contains("flight recorder dump"), "{post}");
    assert!(post.contains("budget_trips"), "{post}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = qa_fleet(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
