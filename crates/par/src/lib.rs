//! # qa-par
//!
//! Parallel batch evaluation for query automata, with behavior
//! memoization. Dependency-free: the executor is `std::thread::scope`
//! work-stealing, the caches are plain hash maps.
//!
//! The paper's algorithms are pure: every answer is a function of
//! (machine, document) alone. That buys two things at batch scale, and this
//! crate is the place they meet:
//!
//! - **Parallelism** — jobs commute, so a batch fans out over worker
//!   threads and the result is *identical* (same vectors, same order) to
//!   the sequential loop. See [`par_batch`] / [`par_batch_with`].
//! - **Memoization** — the expensive inner objects (2DFA crossing-behavior
//!   columns, unranked up/stay decisions on children pair-strings, subtree
//!   summaries of the §6 fixpoints) are pure functions of small keys and
//!   recur massively across a batch. Each worker owns a private
//!   [`BehaviorCache`] aggregating every layer. See [`evaluate_cached`].
//!
//! The two compose through one deliberate design point: the caches hand out
//! [`std::rc::Rc`] shares and are `!Send`, so the executor builds **one
//! context per worker** (the `init` closure of [`par_batch_with`]) instead
//! of sharing state across threads. No locks on the hot path, no cross-core
//! traffic, and the contiguous-chunk job distribution keeps cache-friendly
//! neighboring jobs on the same worker.
//!
//! ## Quickstart: one query, 10 000 documents
//!
//! ```
//! use qa_par::{par_evaluate, Job};
//! use qa_twoway::string_qa::example_3_4_qa;
//!
//! let a = qa_base::Alphabet::from_names(["0", "1"]);
//! let qa = example_3_4_qa(&a);
//! let docs: Vec<Vec<qa_base::Symbol>> = (0..10_000)
//!     .map(|i| a.word(["0110", "10110", "111"][i % 3]))
//!     .collect();
//! let jobs: Vec<Job> = docs
//!     .iter()
//!     .map(|w| Job::String { qa: &qa, word: w })
//!     .collect();
//!
//! let parallel = par_evaluate(4, &jobs);
//! let sequential = par_evaluate(1, &jobs);
//! assert_eq!(parallel, sequential); // worker count is unobservable
//! ```
//!
//! Observability rides along per worker: pass a
//! [`qa_obs::Observer`] factory to [`par_evaluate_with`] and merge
//! per-worker [`qa_obs::Metrics`] with [`qa_obs::Metrics::merge`] — cache
//! hits and misses are reported as [`qa_obs::Counter::CacheHits`] /
//! [`qa_obs::Counter::CacheMisses`].

#![deny(missing_docs)]

pub mod batch;
pub mod executor;
pub mod pool;

pub use batch::{evaluate_cached, par_evaluate, par_evaluate_with, BehaviorCache, Job, Outcome};
pub use executor::{par_batch, par_batch_with};
pub use pool::{PoolJob, WorkPool};
