//! Stay transitions (Definition 5.11): `δ_stay : U_stay → Q*`, computed by a
//! generalized string query automaton over the children's `(state, label)`
//! pairs.

use qa_base::{Result, Symbol};
use qa_strings::StateId;
use qa_twoway::{Bimachine, Gsqa};

/// Dense encoding of a `(state, label)` pair into the pair alphabet used by
/// up languages, stay matchers and stay rules:
/// `index = state · |Σ| + label`.
#[inline]
pub fn pair_symbol(state: StateId, label: Symbol, alphabet_len: usize) -> Symbol {
    Symbol::from_index(state.index() * alphabet_len + label.index())
}

/// Size of the pair alphabet.
#[inline]
pub fn pair_alphabet_len(num_states: usize, alphabet_len: usize) -> usize {
    num_states * alphabet_len
}

/// How `δ_stay` is computed.
///
/// Definition 5.11 requires a GSQA. Every stay rule the library itself
/// constructs (via Theorem 5.17 / Lemma 3.10) is of the *bimachine* form —
/// a left-to-right DFA, a right-to-left DFA and an output function — which
/// is both directly evaluable in one pass per direction and amenable to the
/// Section 6 decision procedures. Arbitrary two-way GSQAs are also
/// supported for full faithfulness to the definition.
#[derive(Clone, Debug)]
pub enum StayRule {
    /// Lemma 3.10 form: output at child `i` determined by the prefix state,
    /// the suffix state, and the pair at `i`. Outputs are automaton states
    /// (dense `u32`).
    Bimachine(Bimachine),
    /// A literal two-way GSQA over the pair alphabet.
    Machine(Gsqa),
}

impl StayRule {
    /// Apply the rule to the children's `(state, label)` pairs, producing
    /// one new state per child.
    pub fn apply(&self, pairs: &[(StateId, Symbol)], alphabet_len: usize) -> Result<Vec<StateId>> {
        let word: Vec<Symbol> = pairs
            .iter()
            .map(|&(q, l)| pair_symbol(q, l, alphabet_len))
            .collect();
        let out = match self {
            StayRule::Bimachine(b) => b.run(&word),
            StayRule::Machine(g) => g.run(&word)?,
        };
        Ok(out
            .into_iter()
            .map(|g| StateId::from_index(g as usize))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_strings::Dfa;

    #[test]
    fn pair_encoding_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for q in 0..4 {
            for l in 0..3 {
                let s = pair_symbol(StateId::from_index(q), Symbol::from_index(l), 3);
                assert!(seen.insert(s));
                assert!(s.index() < pair_alphabet_len(4, 3));
            }
        }
    }

    #[test]
    fn bimachine_stay_rule_applies_per_child() {
        // Two states (0, 1) over a 1-letter alphabet: pair alphabet size 2.
        // Rule: first child becomes state 1, the rest become state 0.
        let mut left = Dfa::new(2);
        let first = left.add_state();
        let rest = left.add_state();
        left.set_initial(first);
        for s in 0..2 {
            left.set_transition(first, Symbol::from_index(s), rest);
            left.set_transition(rest, Symbol::from_index(s), rest);
        }
        let mut right = Dfa::new(2);
        let r = right.add_state();
        right.set_initial(r);
        for s in 0..2 {
            right.set_transition(r, Symbol::from_index(s), r);
        }
        // output: 1 iff the *prefix state before this position* was `first`,
        // i.e. the left run after this position is `rest` but was `first`
        // before — with this DFA the state after position 0 is `rest`, so
        // output on (p, q, sym): p == rest-after-first only at position 0.
        // Simpler: left DFA state after reading position i is `rest` for all
        // i; we need position info, so track "how many read" parity — use
        // the fact that output sees the state AFTER reading position i; make
        // left count: first→rest at pos 0. Then p == rest at every position;
        // instead give left three states. Here: rebuild with a counter.
        let mut left = Dfa::new(2);
        let zero = left.add_state();
        let one = left.add_state();
        let many = left.add_state();
        left.set_initial(zero);
        for s in 0..2 {
            let sym = Symbol::from_index(s);
            left.set_transition(zero, sym, one);
            left.set_transition(one, sym, many);
            left.set_transition(many, sym, many);
        }
        let bim = Bimachine::new(
            left,
            right,
            2,
            move |p, _q, _s| {
                if p == one {
                    1
                } else {
                    0
                }
            },
        )
        .unwrap();
        let rule = StayRule::Bimachine(bim);
        let q = StateId::from_index(0);
        let l = Symbol::from_index(0);
        let out = rule.apply(&[(q, l), (q, l), (q, l)], 1).unwrap();
        assert_eq!(
            out,
            vec![
                StateId::from_index(1),
                StateId::from_index(0),
                StateId::from_index(0)
            ]
        );
    }
}
