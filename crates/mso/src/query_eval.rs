//! Unary-query evaluation: naive re-runs vs the Figure 5/6 two-pass
//! algorithm.
//!
//! Given the compiled deterministic automaton `D` over `Σ × {0,1}` for a
//! unary query `φ(x)`, node `v` is selected iff `D` accepts the tree with
//! `v` marked. The naive strategy re-runs `D` per node — `O(n²)`. The
//! paper's Figure 5 (ranked) / Figure 6 (unranked) algorithm computes every
//! node's verdict in one bottom-up pass (subtree states, the
//! `τ(t_v, v)` analogue) and one top-down pass (context tables, the
//! `τ(t̄_v, v)` analogue): `O(n · |Q|)` overall.

use qa_base::Symbol;
use qa_core::ranked::{ops, Dbta};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::StateId;
use qa_trees::{NodeId, Tree};

use crate::compile_ranked::mark_tree;
use crate::compile_string::ext_symbol;
use crate::unranked::{encoded_alphabet_len, nil_symbol};

/// Naive evaluation: re-run the automaton once per node. `O(n²)`.
pub fn eval_unary_ranked_naive(d: &Dbta, tree: &Tree, sigma: usize) -> Vec<NodeId> {
    tree.nodes()
        .filter(|&v| d.accepts(&mark_tree(tree, v, sigma)))
        .collect()
}

/// The Figure 5 algorithm on the compiled automaton: one bottom-up pass
/// computing the all-unmarked subtree state of every node, one top-down
/// pass computing every node's *context table* (the function "state at `v`
/// ↦ state at the root"), then a per-node verdict. `O(n · |Q|)`.
pub fn eval_unary_ranked(d: &Dbta, tree: &Tree, sigma: usize) -> Vec<NodeId> {
    eval_unary_ranked_with(d, tree, sigma, &mut NoopObserver)
}

/// [`eval_unary_ranked`] with an [`Observer`]: the two passes and the
/// verdict scan run as named phases, every deterministic transition lookup
/// is a [`Counter::TableLookups`], and the machine's (totalized) state
/// count lands in [`Series::MachineStates`]. With [`NoopObserver`] this
/// monomorphizes to exactly `eval_unary_ranked`.
pub fn eval_unary_ranked_with<O: Observer>(
    d: &Dbta,
    tree: &Tree,
    sigma: usize,
    obs: &mut O,
) -> Vec<NodeId> {
    eval_total(&ops::totalize(d), tree, sigma, obs)
}

/// A unary query prepared for batch evaluation: the compiled automaton is
/// totalized **once** instead of per document. `eval_unary_ranked` pays the
/// `O(|Q| · |Σ×{0,1}| · rank)` totalization on every call; across a 10k
/// document batch that fixed cost dominates small-tree evaluation, so batch
/// drivers (qa-par, qa-fleet) evaluate through a `PreparedUnary`.
#[derive(Clone, Debug)]
pub struct PreparedUnary {
    total: Dbta,
    sigma: usize,
}

impl PreparedUnary {
    /// Prepare `d` (compiled over `Σ × {0,1}` for a base alphabet of
    /// `sigma` symbols) by totalizing it now.
    pub fn new(d: &Dbta, sigma: usize) -> Self {
        PreparedUnary {
            total: ops::totalize(d),
            sigma,
        }
    }

    /// Base alphabet size the query was compiled over.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// [`eval_unary_ranked`] against the pre-totalized automaton.
    pub fn eval_ranked(&self, tree: &Tree) -> Vec<NodeId> {
        self.eval_ranked_with(tree, &mut NoopObserver)
    }

    /// [`eval_unary_ranked_with`] against the pre-totalized automaton.
    pub fn eval_ranked_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Vec<NodeId> {
        eval_total(&self.total, tree, self.sigma, obs)
    }

    /// [`eval_unary_unranked`] against the pre-totalized automaton.
    pub fn eval_unranked(&self, tree: &Tree) -> Vec<NodeId> {
        self.eval_unranked_with(tree, &mut NoopObserver)
    }

    /// [`eval_unary_unranked_with`] against the pre-totalized automaton.
    pub fn eval_unranked_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Vec<NodeId> {
        obs.phase_start("fcns encoding");
        let (enc, map) = qa_trees::fcns::encode_with_map(tree, nil_symbol(self.sigma));
        obs.phase_end("fcns encoding");
        let selected_enc = eval_total(&self.total, &enc, encoded_alphabet_len(self.sigma), obs);
        selected_enc
            .into_iter()
            .filter_map(|ev| map[ev.index()])
            .collect()
    }

    /// Like [`eval_unranked_with`](Self::eval_unranked_with), but pairs
    /// every selected node with its Figure 5 certificate: the state the
    /// bottom-up run reaches on the *marked* node, whose context maps it
    /// to an accepting root. The certificate is captured from the
    /// [`Observer::selected`] events of the ranked run on the FCNS
    /// encoding and mapped back to the unranked tree, so the node list
    /// (and its order) is identical to `eval_unranked_with`. A serving
    /// daemon uses this for `why_selected` provenance.
    pub fn eval_unranked_explained<O: Observer>(
        &self,
        tree: &Tree,
        obs: &mut O,
    ) -> Vec<(NodeId, u32)> {
        obs.phase_start("fcns encoding");
        let (enc, map) = qa_trees::fcns::encode_with_map(tree, nil_symbol(self.sigma));
        obs.phase_end("fcns encoding");
        let mut tap = CertificateTap {
            inner: obs,
            picks: Vec::new(),
        };
        let _ = eval_total(
            &self.total,
            &enc,
            encoded_alphabet_len(self.sigma),
            &mut tap,
        );
        tap.picks
            .into_iter()
            .filter_map(|(pos, state)| map[pos as usize].map(|v| (v, state)))
            .collect()
    }
}

/// Forwards every event to the wrapped observer while capturing the
/// `(node, marked_state)` pairs of [`Observer::selected`] events.
struct CertificateTap<'a, O> {
    inner: &'a mut O,
    picks: Vec<(u32, u32)>,
}

impl<O: Observer> Observer for CertificateTap<'_, O> {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.inner.count(counter, n);
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        self.inner.record(series, value);
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        self.inner.config(state, pos, dir);
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        self.inner.phase_start(name);
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        self.inner.phase_end(name);
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        self.picks.push((pos, state));
        self.inner.selected(pos, state, sym);
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        self.inner.stay_assign(parent, child, state);
    }
    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        self.inner.state_visit(machine, state, sym);
    }
    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        self.inner.transition_fired(machine, from, sym, to);
    }
    #[inline]
    fn checkpoint(&mut self) -> Result<(), qa_obs::Abort> {
        self.inner.checkpoint()
    }
    #[inline]
    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }
}

/// The Figure 5 two-pass algorithm on an already-total automaton.
///
/// Every node processed counts one `Counter::Steps` and polls
/// [`Observer::checkpoint`]; a budget-enforcing observer (a serving
/// daemon's per-request watchdog) can therefore abort a runaway
/// evaluation early. An aborted evaluation returns an empty selection —
/// the caller distinguishes "nothing selected" from "budget tripped" by
/// inspecting its watchdog.
fn eval_total<O: Observer>(d: &Dbta, tree: &Tree, sigma: usize, obs: &mut O) -> Vec<NodeId> {
    obs.record(Series::MachineStates, d.num_states() as u64);
    let unmarked = |s: Symbol| ext_symbol(s, 0, sigma);
    let marked = |s: Symbol| ext_symbol(s, 1, sigma);

    // Pass 1 (bottom-up): b[v] = state of the unmarked subtree t_v.
    obs.phase_start("bottom-up pass");
    let mut b: Vec<Option<StateId>> = vec![None; tree.num_nodes()];
    for v in tree.postorder() {
        obs.count(Counter::Steps, 1);
        if obs.checkpoint().is_err() {
            obs.phase_end("bottom-up pass");
            return Vec::new();
        }
        let children: Vec<StateId> = tree
            .children(v)
            .iter()
            .map(|c| b[c.index()].expect("postorder"))
            .collect();
        obs.count(Counter::TableLookups, 1);
        let ext = unmarked(tree.label(v));
        b[v.index()] = d.transition(&children, ext);
        if let Some(q) = b[v.index()] {
            obs.state_visit(Machine::Dbtar, q.index() as u32, ext.index() as u32);
            if obs.is_enabled() {
                for &c in &children {
                    obs.transition_fired(
                        Machine::Dbtar,
                        c.index() as u32,
                        ext.index() as u32,
                        q.index() as u32,
                    );
                }
            }
        }
        if b[v.index()].is_none() {
            // total automaton ⇒ only possible if the tree's rank exceeds
            // the automaton's; nothing is selected then.
            obs.phase_end("bottom-up pass");
            return Vec::new();
        }
    }
    obs.phase_end("bottom-up pass");

    // Pass 2 (top-down): ctx[v][q] = root state if v's subtree evaluated to
    // q (everything outside v unmarked).
    obs.phase_start("top-down pass");
    let nq = d.num_states();
    let mut ctx: Vec<Option<Vec<StateId>>> = vec![None; tree.num_nodes()];
    ctx[tree.root().index()] = Some((0..nq).map(StateId::from_index).collect());
    for v in tree.preorder() {
        obs.count(Counter::Steps, 1);
        if obs.checkpoint().is_err() {
            obs.phase_end("top-down pass");
            return Vec::new();
        }
        let table = ctx[v.index()].clone().expect("preorder");
        let kids = tree.children(v).to_vec();
        let kid_states: Vec<StateId> = kids.iter().map(|c| b[c.index()].unwrap()).collect();
        for (i, &c) in kids.iter().enumerate() {
            let mut child_table: Vec<StateId> = Vec::with_capacity(nq);
            for q_idx in 0..nq {
                let mut children = kid_states.clone();
                children[i] = StateId::from_index(q_idx);
                obs.count(Counter::TableLookups, 1);
                let ext = unmarked(tree.label(v));
                let here = d.transition(&children, ext).expect("totalized");
                obs.state_visit(Machine::Dbtar, here.index() as u32, ext.index() as u32);
                child_table.push(table[here.index()]);
            }
            ctx[c.index()] = Some(child_table);
        }
    }
    obs.phase_end("top-down pass");

    // Verdicts: replace v's subtree state by its marked variant.
    obs.phase_start("verdicts");
    let mut out = Vec::new();
    for v in tree.nodes() {
        obs.count(Counter::Steps, 1);
        if obs.checkpoint().is_err() {
            obs.phase_end("verdicts");
            return Vec::new();
        }
        let children: Vec<StateId> = tree
            .children(v)
            .iter()
            .map(|c| b[c.index()].unwrap())
            .collect();
        obs.count(Counter::SelectionChecks, 1);
        let ext = marked(tree.label(v));
        if let Some(q_marked) = d.transition(&children, ext) {
            obs.state_visit(Machine::Dbtar, q_marked.index() as u32, ext.index() as u32);
            let root_state = ctx[v.index()].as_ref().unwrap()[q_marked.index()];
            if d.is_final(root_state) {
                // certificate: marking v drives the bottom-up run
                // into q_marked, and v's context maps that to an
                // accepting root state.
                obs.config(q_marked.index() as u32, v.index() as u32, 0);
                obs.selected(
                    v.index() as u32,
                    q_marked.index() as u32,
                    tree.label(v).index() as u32,
                );
                out.push(v);
            }
        }
    }
    obs.phase_end("verdicts");
    out
}

/// Figure 6 for unranked trees: encode (first-child/next-sibling), run the
/// ranked two-pass on the encoding, and map selected encoded nodes back.
pub fn eval_unary_unranked(d: &Dbta, tree: &Tree, sigma: usize) -> Vec<NodeId> {
    eval_unary_unranked_with(d, tree, sigma, &mut NoopObserver)
}

/// [`eval_unary_unranked`] with an [`Observer`]: the FCNS encoding runs as
/// its own phase, then delegates to [`eval_unary_ranked_with`].
pub fn eval_unary_unranked_with<O: Observer>(
    d: &Dbta,
    tree: &Tree,
    sigma: usize,
    obs: &mut O,
) -> Vec<NodeId> {
    obs.phase_start("fcns encoding");
    let (enc, map) = qa_trees::fcns::encode_with_map(tree, nil_symbol(sigma));
    obs.phase_end("fcns encoding");
    let selected_enc = eval_unary_ranked_with(d, &enc, encoded_alphabet_len(sigma), obs);
    selected_enc
        .into_iter()
        .filter_map(|ev| map[ev.index()])
        .collect()
}

/// Naive per-node evaluation for unranked trees. `O(n²)`.
pub fn eval_unary_unranked_naive(d: &Dbta, tree: &Tree, sigma: usize) -> Vec<NodeId> {
    tree.nodes()
        .filter(|&v| crate::unranked::selects_unranked(d, tree, v, sigma))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::{compile_ranked, unranked};
    use qa_base::rng::StdRng;
    use qa_base::Alphabet;

    #[test]
    fn two_pass_matches_naive_on_ranked_trees() {
        let mut a = Alphabet::from_names(["s", "t"]);
        let f = parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
        let d = compile_ranked::compile_unary(&f, "v", 2, 2).unwrap();
        let labels = [a.symbol("s"), a.symbol("t")];
        let mut rng = StdRng::seed_from_u64(23);
        for n in [1usize, 3, 7, 15, 40] {
            let t = qa_trees::generate::random(&mut rng, &labels, n, Some(2));
            let mut fast = eval_unary_ranked(&d, &t, 2);
            let mut naive = eval_unary_ranked_naive(&d, &t, 2);
            fast.sort_unstable();
            naive.sort_unstable();
            assert_eq!(fast, naive, "{}", t.render(&a));
        }
    }

    #[test]
    fn two_pass_matches_naive_on_unranked_trees() {
        let mut a = Alphabet::from_names(["0", "1"]);
        let src = "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))";
        let f = parse(src, &mut a).unwrap();
        let d = unranked::compile_unary(&f, "v", 2).unwrap();
        let labels = [a.symbol("0"), a.symbol("1")];
        let mut rng = StdRng::seed_from_u64(29);
        for n in [1usize, 4, 9, 20] {
            let t = qa_trees::generate::random(&mut rng, &labels, n, None);
            let mut fast = eval_unary_unranked(&d, &t, 2);
            let mut naive = eval_unary_unranked_naive(&d, &t, 2);
            fast.sort_unstable();
            naive.sort_unstable();
            assert_eq!(fast, naive, "{}", t.render(&a));
        }
    }

    #[test]
    fn prepared_matches_per_call_evaluation() {
        let mut a = Alphabet::from_names(["s", "t"]);
        let f = parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
        let d = compile_ranked::compile_unary(&f, "v", 2, 2).unwrap();
        let prepared = PreparedUnary::new(&d, 2);
        let labels = [a.symbol("s"), a.symbol("t")];
        let mut rng = StdRng::seed_from_u64(41);
        for n in [1usize, 5, 17, 33] {
            let t = qa_trees::generate::random(&mut rng, &labels, n, Some(2));
            assert_eq!(prepared.eval_ranked(&t), eval_unary_ranked(&d, &t, 2));
        }

        let mut a2 = Alphabet::from_names(["0", "1"]);
        let src = "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))";
        let f2 = parse(src, &mut a2).unwrap();
        let d2 = unranked::compile_unary(&f2, "v", 2).unwrap();
        let prepared2 = PreparedUnary::new(&d2, 2);
        let labels2 = [a2.symbol("0"), a2.symbol("1")];
        for n in [1usize, 6, 14] {
            let t = qa_trees::generate::random(&mut rng, &labels2, n, None);
            assert_eq!(prepared2.eval_unranked(&t), eval_unary_unranked(&d2, &t, 2));
        }
    }

    #[test]
    fn two_pass_scales_to_large_trees() {
        // the point of Figure 5: linear evaluation; run on a tree far beyond
        // naive's comfort zone.
        let mut a = Alphabet::from_names(["s", "t"]);
        let f = parse("leaf(v) & (ex r. (root(r) & label(r, s)))", &mut a).unwrap();
        let d = compile_ranked::compile_unary(&f, "v", 2, 2).unwrap();
        let t = qa_trees::generate::complete(a.symbol("s"), 2, 12); // 8191 nodes
        let selected = eval_unary_ranked(&d, &t, 2);
        assert_eq!(selected.len(), 4096, "all leaves selected");
    }
}
