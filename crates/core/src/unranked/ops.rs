//! Product constructions for unranked tree automata.
//!
//! Intersection and union of `NBTAu` languages via the pair construction:
//! the product automaton's transition language `δ((q, q'), a)` is the set
//! of pair-strings whose left projection lies in `δ₁(q, a)` and right
//! projection in `δ₂(q', a)` — regular, built as a product NFA over the
//! pair alphabet. Complementation is *not* provided here: it needs
//! determinization, which this workspace performs through the
//! first-child/next-sibling encoding in `qa-mso` (see DESIGN.md §2).

use qa_base::Symbol;
use qa_strings::{Nfa, StateId};

use super::Nbtau;

/// Dense pairing of two state spaces: `(q, q') ↦ q · n2 + q'`.
#[inline]
fn pair(q1: StateId, q2: StateId, n2: usize) -> StateId {
    StateId::from_index(q1.index() * n2 + q2.index())
}

/// The product NFA over pair-of-state symbols: accepts pair-strings whose
/// projections are accepted by `n1` and `n2` respectively.
fn product_language(n1: &Nfa, n2: &Nfa, states2: usize, pair_alphabet: usize) -> Nfa {
    let mut out = Nfa::new(pair_alphabet);
    // states: (n1 state, n2 state), lazily — but the component NFAs are
    // small, so a dense grid keeps the code simple.
    let (a_n, b_n) = (n1.num_states(), n2.num_states());
    for _ in 0..a_n * b_n {
        out.add_state();
    }
    let grid = |a: StateId, b: StateId| StateId::from_index(a.index() * b_n + b.index());
    for &ia in n1.initial_states() {
        for &ib in n2.initial_states() {
            out.set_initial(grid(ia, ib));
        }
    }
    for a in 0..a_n {
        let sa = StateId::from_index(a);
        for b in 0..b_n {
            let sb = StateId::from_index(b);
            if n1.is_accepting(sa) && n2.is_accepting(sb) {
                out.set_accepting(grid(sa, sb), true);
            }
            // ε moves in either component
            for &ta in n1.epsilon_successors(sa) {
                out.add_epsilon(grid(sa, sb), grid(ta, sb));
            }
            for &tb in n2.epsilon_successors(sb) {
                out.add_epsilon(grid(sa, sb), grid(sa, tb));
            }
            // joint moves on the pair symbol (x, y)
            for x in 0..n1.alphabet_len() {
                let sx = Symbol::from_index(x);
                for &ta in n1.successors(sa, sx) {
                    for y in 0..n2.alphabet_len() {
                        let sy = Symbol::from_index(y);
                        for &tb in n2.successors(sb, sy) {
                            let sym = Symbol::from_index(x * states2 + y);
                            out.add_transition(grid(sa, sb), sym, grid(ta, tb));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Product of two `NBTAu`s; `combine` decides finality of `(q₁, q₂)`.
pub fn product(a: &Nbtau, b: &Nbtau, combine: impl Fn(bool, bool) -> bool) -> Nbtau {
    assert_eq!(
        a.alphabet_len(),
        b.alphabet_len(),
        "product over mismatched alphabets"
    );
    let (n1, n2) = (a.num_states(), b.num_states());
    let mut out = Nbtau::new(a.alphabet_len());
    for _ in 0..n1 * n2 {
        out.add_state();
    }
    for q1 in 0..n1 {
        for q2 in 0..n2 {
            let p = pair(StateId::from_index(q1), StateId::from_index(q2), n2);
            out.set_final(
                p,
                combine(
                    a.is_final(StateId::from_index(q1)),
                    b.is_final(StateId::from_index(q2)),
                ),
            );
        }
    }
    for sym_idx in 0..a.alphabet_len() {
        let sym = Symbol::from_index(sym_idx);
        for q1 in 0..n1 {
            let s1 = StateId::from_index(q1);
            let Some(l1) = a.language(s1, sym) else {
                continue;
            };
            for q2 in 0..n2 {
                let s2 = StateId::from_index(q2);
                let Some(l2) = b.language(s2, sym) else {
                    continue;
                };
                let lang = product_language(l1, l2, n2, n1 * n2);
                out.set_language(pair(s1, s2, n2), sym, lang)
                    .expect("pair state count matches");
            }
        }
    }
    out
}

/// Intersection: accepts trees accepted by both.
///
/// Note: for a *union* over nondeterministic automata, prefer
/// [`disjoint_union`] — the pair construction under-approximates unions
/// when one side has no run at all on a subtree.
pub fn intersect(a: &Nbtau, b: &Nbtau) -> Nbtau {
    product(a, b, |x, y| x && y)
}

/// Union by disjoint sum of the state spaces (the standard NBTA union).
pub fn disjoint_union(a: &Nbtau, b: &Nbtau) -> Nbtau {
    assert_eq!(a.alphabet_len(), b.alphabet_len());
    let n1 = a.num_states();
    let total = n1 + b.num_states();
    let mut out = Nbtau::new(a.alphabet_len());
    for _ in 0..total {
        out.add_state();
    }
    // embed a's languages (state alphabet grows: relabel symbols 1:1)
    let embed = |n: &Nfa, offset: usize| -> Nfa {
        let mut e = Nfa::new(total);
        for _ in 0..n.num_states() {
            e.add_state();
        }
        for s_idx in 0..n.num_states() {
            let s = StateId::from_index(s_idx);
            e.set_accepting(s, n.is_accepting(s));
            for &t in n.epsilon_successors(s) {
                e.add_epsilon(s, t);
            }
            for x in 0..n.alphabet_len() {
                for &t in n.successors(s, Symbol::from_index(x)) {
                    e.add_transition(s, Symbol::from_index(x + offset), t);
                }
            }
        }
        for &i in n.initial_states() {
            e.set_initial(i);
        }
        e
    };
    for (q, sym, lang) in a.languages() {
        out.set_language(q, sym, embed(lang, 0)).expect("sized");
    }
    for (q, sym, lang) in b.languages() {
        out.set_language(StateId::from_index(q.index() + n1), sym, embed(lang, n1))
            .expect("sized");
    }
    for q in 0..n1 {
        let s = StateId::from_index(q);
        out.set_final(s, a.is_final(s));
    }
    for q in 0..b.num_states() {
        out.set_final(
            StateId::from_index(q + n1),
            b.is_final(StateId::from_index(q)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_strings::Regex;
    use qa_trees::sexpr::from_sexpr;

    /// NBTAu accepting trees whose root has exactly `n` children (any
    /// labels below, over a unary alphabet).
    fn root_arity(n: usize) -> Nbtau {
        let mut a = Nbtau::new(1);
        let any = a.add_state();
        let root = a.add_state();
        a.set_final(root, true);
        let x = Symbol::from_index(0);
        let any_s = Regex::Sym(Symbol::from_index(any.index()));
        a.set_language(any, x, any_s.clone().star().to_nfa(2))
            .unwrap();
        let mut fixed = Regex::Epsilon;
        for _ in 0..n {
            fixed = fixed.concat(any_s.clone());
        }
        a.set_language(root, x, fixed.to_nfa(2)).unwrap();
        a
    }

    /// NBTAu accepting trees of height ≥ 1 (root not a leaf).
    fn not_leaf() -> Nbtau {
        let mut a = Nbtau::new(1);
        let any = a.add_state();
        let root = a.add_state();
        a.set_final(root, true);
        let x = Symbol::from_index(0);
        let any_s = Regex::Sym(Symbol::from_index(any.index()));
        a.set_language(any, x, any_s.clone().star().to_nfa(2))
            .unwrap();
        a.set_language(root, x, any_s.clone().plus().to_nfa(2))
            .unwrap();
        a
    }

    #[test]
    fn intersection_requires_both() {
        let two = root_arity(2);
        let tall = not_leaf();
        let both = intersect(&two, &tall);
        let mut names = Alphabet::from_names(["x"]);
        for (s, want) in [
            ("x", false),
            ("(x x)", false),
            ("(x x x)", true),
            ("(x (x x) x)", true),
            ("(x x x x)", false),
        ] {
            let t = from_sexpr(s, &mut names).unwrap();
            assert_eq!(both.accepts(&t), two.accepts(&t) && tall.accepts(&t), "{s}");
            assert_eq!(both.accepts(&t), want, "{s}");
        }
    }

    #[test]
    fn disjoint_union_accepts_either() {
        let two = root_arity(2);
        let three = root_arity(3);
        let either = disjoint_union(&two, &three);
        let mut names = Alphabet::from_names(["x"]);
        for (s, want) in [
            ("x", false),
            ("(x x x)", true),
            ("(x x x x)", true),
            ("(x x x x x)", false),
        ] {
            let t = from_sexpr(s, &mut names).unwrap();
            assert_eq!(either.accepts(&t), want, "{s}");
        }
    }

    #[test]
    fn products_preserve_emptiness_reasoning() {
        // arity-2 ∩ arity-3 at the root = empty
        let conflict = intersect(&root_arity(2), &root_arity(3));
        assert!(!crate::unranked::emptiness::is_nonempty(&conflict));
        // arity-2 ∩ height≥1 is non-empty, with a 3-node witness
        let ok = intersect(&root_arity(2), &not_leaf());
        let w = crate::unranked::emptiness::witness(&ok).unwrap();
        assert!(ok.accepts(&w));
        assert_eq!(w.num_nodes(), 3);
    }

    #[test]
    fn circuit_self_intersection_is_identity() {
        let a = Alphabet::from_names(["AND", "OR", "0", "1"]);
        let c = Nbtau::boolean_circuit(&a);
        let cc = intersect(&c, &c);
        let mut names = a.clone();
        for s in ["1", "(AND 1 0)", "(OR 0 (AND 1 1))"] {
            let t = from_sexpr(s, &mut names).unwrap();
            assert_eq!(cc.accepts(&t), c.accepts(&t), "{s}");
        }
    }
}
