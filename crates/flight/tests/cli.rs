//! End-to-end tests of the `qa-fleet` binary: a green smoke run, a
//! deterministic rerun, a budget-tripped fleet leaving a post-mortem, and
//! a live `--serve` fleet scraped over HTTP mid-run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn qa_fleet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args(args)
        .output()
        .expect("spawn qa-fleet")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

/// Drop the `qa_heap_*` gauge lines from a Prometheus export. Under
/// `--features alloc-count` those gauges are live process state — they
/// move between renders and across schedules — so the byte-identity
/// assertions compare everything but them. In the default build they are
/// absent and this is the identity function.
fn without_heap_gauges(prom: &str) -> String {
    prom.lines()
        .filter(|l| !l.contains("qa_heap_"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn smoke_run_succeeds_and_writes_exports() {
    let dir = tmp("fleet-smoke");
    let out = qa_fleet(&["--smoke", "--out-dir", &dir]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("qa-fleet: 12 run(s)"), "{stdout}");
    assert!(stdout.contains("example-3-4"), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");

    let dir = PathBuf::from(&dir);
    let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
    assert!(summary.contains("steps   p50"), "{summary}");
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(prom.contains("qa_fleet_steps_total"), "{prom}");
    let trace = std::fs::read_to_string(dir.join("trace-0.json")).unwrap();
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(
        !dir.join("postmortem.txt").exists(),
        "green run must not leave a post-mortem"
    );

    // The span profile is always exported, serve or not: every line is
    // `stack;frames count` with a positive count, and the stacks are made
    // of the engines' phase names (space-sanitized).
    let folded = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!stack.is_empty(), "{line}");
        assert!(count.parse::<u64>().expect("integer weight") > 0, "{line}");
    }
    assert!(folded.lines().any(|l| l.starts_with("run")), "{folded}");
}

#[test]
fn reruns_with_the_same_seed_are_byte_identical() {
    let a = tmp("fleet-det-a");
    let b = tmp("fleet-det-b");
    for dir in [&a, &b] {
        let out = qa_fleet(&[
            "--queries",
            "4",
            "--docs",
            "2",
            "--size",
            "64",
            "--seed",
            "9",
            "--sample-every",
            "2",
            "--out-dir",
            dir,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Counters, documents and sampling are all seeded, and the summary on
    // disk carries no wall-clock line, so both exports reproduce
    // byte-for-byte. (The phase spans of the trace export carry wall-clock
    // values and are excluded.)
    let read = |d: &str, f: &str| std::fs::read_to_string(PathBuf::from(d).join(f)).unwrap();
    assert_eq!(
        without_heap_gauges(&read(&a, "metrics.prom")),
        without_heap_gauges(&read(&b, "metrics.prom"))
    );
    assert_eq!(read(&a, "summary.txt"), read(&b, "summary.txt"));
    // Same runs sampled, same step counts inside the exported trace.
    let counters = |text: &str| {
        text.split("\"counters\"")
            .nth(1)
            .expect("trace has a counters event")
            .to_string()
    };
    assert_eq!(
        counters(&read(&a, "trace-0.json")),
        counters(&read(&b, "trace-0.json"))
    );
}

#[test]
fn parallel_jobs_match_sequential_byte_for_byte() {
    // The acceptance gate of the parallel executor: `--jobs 4` must leave
    // exactly the bytes `--jobs 1` leaves — same summary table, same merged
    // Prometheus registry — because outcomes land in indexed slots,
    // sampling flags are pre-drawn in job order, and counter merges
    // commute.
    let seq = tmp("fleet-jobs-1");
    let par = tmp("fleet-jobs-4");
    for (jobs, dir) in [("1", &seq), ("4", &par)] {
        let out = qa_fleet(&[
            "--queries",
            "4",
            "--docs",
            "6",
            "--size",
            "64",
            "--seed",
            "9",
            "--sample-every",
            "2",
            "--jobs",
            jobs,
            "--out-dir",
            dir,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let read = |d: &str, f: &str| std::fs::read_to_string(PathBuf::from(d).join(f)).unwrap();
    assert_eq!(read(&seq, "summary.txt"), read(&par, "summary.txt"));
    assert_eq!(
        without_heap_gauges(&read(&seq, "metrics.prom")),
        without_heap_gauges(&read(&par, "metrics.prom"))
    );
}

#[test]
fn failed_run_flushes_partial_telemetry_mid_batch() {
    // When a worker's budget trips, summary.txt/metrics.prom must already
    // be on disk before the batch finishes; on normal exit they are
    // overwritten by the complete versions, so here (where the whole fleet
    // completes after the failure) the final summary has no PARTIAL marker
    // but both files exist and record the failure.
    let dir = tmp("fleet-partial");
    let out = qa_fleet(&[
        "--queries",
        "1",
        "--docs",
        "3",
        "--size",
        "64",
        "--max-steps",
        "20",
        "--jobs",
        "2",
        "--out-dir",
        &dir,
    ]);
    assert_eq!(out.status.code(), Some(1));
    let dir = PathBuf::from(&dir);
    let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
    assert!(summary.contains("3 failed"), "{summary}");
    assert!(std::fs::read_to_string(dir.join("metrics.prom"))
        .unwrap()
        .contains("qa_fleet_budget_trips_total"));
}

#[test]
fn tripped_budget_fails_the_fleet_and_leaves_a_post_mortem() {
    let dir = tmp("fleet-abort");
    let out = qa_fleet(&[
        "--queries",
        "1",
        "--docs",
        "2",
        "--size",
        "64",
        "--max-steps",
        "20",
        "--out-dir",
        &dir,
    ]);
    assert_eq!(out.status.code(), Some(1), "budget trips must fail the run");
    let post = std::fs::read_to_string(PathBuf::from(&dir).join("postmortem.txt")).unwrap();
    assert!(post.contains("run aborted by watchdog"), "{post}");
    assert!(post.contains("flight recorder dump"), "{post}");
    assert!(post.contains("budget_trips"), "{post}");
}

/// Minimal HTTP/1.1 GET against the fleet's pulse server.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to pulse server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_ascii_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_answers_live_scrapes_and_final_scrape_matches_the_export() {
    // A paced fleet (so the batch takes a comfortable while) with the
    // pulse server on an ephemeral loopback port. The stdout protocol
    // lines coordinate the phases: after "serving on" the batch is in
    // flight (mid-run scrape), after "run complete" the exports are on
    // disk (final scrape must equal metrics.prom byte-for-byte).
    let dir = tmp("fleet-serve");
    let mut child = Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args([
            "--smoke",
            "--out-dir",
            &dir,
            "--serve",
            "127.0.0.1:0",
            "--pace-ms",
            "50",
            "--linger-ms",
            "30000",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qa-fleet --serve");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("child printed the serving line")
            .expect("read child stdout");
        if let Some(a) = line.strip_prefix("pulse: serving on ") {
            break a.to_string();
        }
    };

    // Mid-run: liveness + readiness are up and the scrape is valid
    // Prometheus text exposition with the fleet's families present.
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    // Readiness flips once the out dir exists and documents are generated;
    // until then /readyz legitimately answers 503 "warming up".
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let (status, body) = http_get(&addr, "/readyz");
        if status == 200 {
            break;
        }
        assert_eq!((status, body.as_str()), (503, "warming up\n"));
        assert!(
            std::time::Instant::now() < deadline,
            "fleet never became ready"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Runs merge into the served registry as they finish, so poll until
    // the first completed run's counters appear (the 50 ms pace leaves a
    // wide window before the batch ends).
    let mid = loop {
        let (status, mid) = http_get(&addr, "/metrics");
        assert_eq!(status, 200);
        qa_pulse::validate_prometheus(&mid).expect("mid-run scrape parses as Prometheus");
        if mid.contains("qa_fleet_steps_total") {
            break mid;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no completed run showed up in /metrics: {mid}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(mid.contains("qa_build_info{"), "{mid}");
    let (status, flight) = http_get(&addr, "/flight");
    assert_eq!(status, 200);
    assert!(flight.starts_with("{\"retained\":"), "{flight}");
    assert!(flight.contains("\"events\":["), "{flight}");

    for line in lines.by_ref() {
        if line.expect("read child stdout") == "pulse: run complete" {
            break;
        }
    }

    // Post-run: the scrape and the exported file are the same bytes.
    let (status, fin) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let prom =
        std::fs::read_to_string(PathBuf::from(&dir).join("metrics.prom")).expect("metrics.prom");
    assert_eq!(
        without_heap_gauges(&fin),
        without_heap_gauges(&prom),
        "post-run scrape != exported metrics.prom"
    );
    // The served profile equals the exported profile.folded.
    let (status, profile) = http_get(&addr, "/profile");
    assert_eq!(status, 200);
    let folded = std::fs::read_to_string(PathBuf::from(&dir).join("profile.folded"))
        .expect("profile.folded");
    assert_eq!(profile, folded);

    // /quit ends the linger window promptly.
    let (status, _) = http_get(&addr, "/quit");
    assert_eq!(status, 200);
    let out = child.wait().expect("child exits");
    assert!(out.success());
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = qa_fleet(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
