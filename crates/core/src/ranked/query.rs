//! Ranked query automata (Definition 4.3) and Example 4.4.

use qa_base::{Result, Symbol};
use qa_obs::{Counter, NoopObserver, Observer};
use qa_strings::StateId;
use qa_trees::{NodeId, Tree};

use super::twoway::{build_circuit_machine, TwoWayRanked};

/// A ranked query automaton: a two-way deterministic ranked tree automaton
/// plus a selection function `λ : Q × Σ → {⊥, 1}`.
///
/// Node `v` is *selected* iff the run is accepting and `v` is visited in
/// some configuration in a state `q` with `λ(q, lab(v)) = 1`
/// (Definition 4.3's semantics — selection at any visit suffices).
#[derive(Clone, Debug)]
pub struct RankedQa {
    machine: TwoWayRanked,
    /// `select[state][symbol]`.
    select: Vec<Vec<bool>>,
}

impl RankedQa {
    /// Wrap a machine with an all-`⊥` selection function.
    pub fn new(machine: TwoWayRanked) -> Self {
        let select = vec![vec![false; machine.alphabet_len()]; machine.num_states()];
        RankedQa { machine, select }
    }

    /// Mark `λ(state, sym) = 1`.
    pub fn set_selecting(&mut self, state: StateId, sym: Symbol, selecting: bool) {
        self.select[state.index()][sym.index()] = selecting;
    }

    /// Whether `λ(state, sym) = 1`.
    pub fn is_selecting(&self, state: StateId, sym: Symbol) -> bool {
        self.select[state.index()][sym.index()]
    }

    /// The underlying two-way automaton.
    pub fn machine(&self) -> &TwoWayRanked {
        &self.machine
    }

    /// The query `A(t)`: the selected nodes (empty for rejecting runs).
    pub fn query(&self, tree: &Tree) -> Result<Vec<NodeId>> {
        self.query_with(tree, &mut NoopObserver)
    }

    /// [`RankedQa::query`] with an [`Observer`]: the underlying run and the
    /// selection scan are reported to `obs`. With [`NoopObserver`] this
    /// monomorphizes to exactly `query`.
    pub fn query_with<O: Observer>(&self, tree: &Tree, obs: &mut O) -> Result<Vec<NodeId>> {
        obs.phase_start("run");
        let rec = self.machine.run_with(tree, obs);
        obs.phase_end("run");
        let rec = rec?;
        if !rec.accepted {
            return Ok(Vec::new());
        }
        obs.phase_start("selection scan");
        let out = tree
            .nodes()
            .filter(|&v| {
                let label = tree.label(v);
                obs.count(
                    Counter::SelectionChecks,
                    rec.assumed[v.index()].len() as u64,
                );
                match rec.assumed[v.index()]
                    .iter()
                    .find(|&&q| self.is_selecting(q, label))
                {
                    Some(&q) => {
                        obs.selected(v.index() as u32, q.index() as u32, label.index() as u32);
                        true
                    }
                    None => false,
                }
            })
            .collect();
        obs.phase_end("selection scan");
        Ok(out)
    }

    /// Whether the underlying machine accepts `tree`.
    pub fn accepts(&self, tree: &Tree) -> Result<bool> {
        self.machine.accepts(tree)
    }
}

/// Example 4.4: select every node of a Boolean circuit that evaluates to 1.
///
/// Built from the Example 4.2 machine with `F = Q` and
/// `λ((i, j), op) = 1` iff `i op j = 1`; completed with the leaf and root
/// verdict cases so literally *every* node evaluating to 1 is selected.
pub fn example_4_4(alphabet: &qa_base::Alphabet) -> RankedQa {
    let (machine, st) = build_circuit_machine(alphabet, true);
    let and = alphabet.symbol("AND");
    let or = alphabet.symbol("OR");
    let one = alphabet.symbol("1");
    let mut qa = RankedQa::new(machine);
    for i in 0..2usize {
        for j in 0..2usize {
            let pair = StateId::from_index(st.pair_base + 2 * i + j);
            if i & j == 1 {
                qa.set_selecting(pair, and, true);
            }
            if i | j == 1 {
                qa.set_selecting(pair, or, true);
            }
        }
    }
    // leaves labeled 1 evaluate to 1
    qa.set_selecting(st.u, one, true);
    // root verdict state (covers the single-leaf circuit `1`)
    for s in 0..alphabet.len() {
        qa.set_selecting(st.v1, Symbol::from_index(s), true);
    }
    qa
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    fn alpha() -> Alphabet {
        Alphabet::from_names(["AND", "OR", "0", "1"])
    }

    /// Reference: evaluate the circuit bottom-up and list 1-valued nodes.
    fn eval_nodes(t: &Tree, a: &Alphabet) -> Vec<NodeId> {
        let one = a.symbol("1");
        let and = a.symbol("AND");
        let vals = qa_trees::traverse::fold_bottom_up(t, |t, v, kids: &[bool]| {
            if t.is_leaf(v) {
                t.label(v) == one
            } else if t.label(v) == and {
                kids.iter().all(|&b| b)
            } else {
                kids.iter().any(|&b| b)
            }
        });
        t.nodes().filter(|v| vals[v.index()]).collect()
    }

    #[test]
    fn example_4_4_selects_true_gates() {
        let mut a = alpha();
        let qa = example_4_4(&a);
        for s in [
            "1",
            "0",
            "(AND 1 0)",
            "(OR (AND 1 1) 0)",
            "(AND (OR 1 0) (OR 0 0))",
            "(OR (OR 0 0) (AND (OR 1 1) 1))",
        ] {
            let t = from_sexpr(s, &mut a).unwrap();
            let mut got = qa.query(&t).unwrap();
            let mut want = eval_nodes(&t, &a);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{s}");
        }
    }

    #[test]
    fn example_4_4_on_random_circuits() {
        use qa_base::rng::StdRng;
        let a = alpha();
        let qa = example_4_4(&a);
        let inner = [a.symbol("AND"), a.symbol("OR")];
        let leaves = [a.symbol("0"), a.symbol("1")];
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let t = qa_trees::generate::random_full_binary(&mut rng, &inner, &leaves, 12);
            let mut got = qa.query(&t).unwrap();
            let mut want = eval_nodes(&t, &a);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{}", t.render(&a));
        }
    }

    #[test]
    fn remark_4_5_two_sided_query() {
        // Remark 4.5: "select the root if there is a leaf labeled σ, and
        // select all leaves if the root is labeled σ" needs two-way travel.
        // Here: σ = OR for the root condition, σ = 1 for the leaf condition.
        // We verify the Example 4.4 machine's information flow indirectly:
        // the root's verdict state depends on all leaves (bottom-up), and
        // leaf selection under a root condition appears in the unranked
        // Example 5.14 test; this test pins the root-depends-on-leaves half.
        let mut a = alpha();
        let qa = example_4_4(&a);
        let t1 = from_sexpr("(OR 0 1)", &mut a).unwrap();
        let t0 = from_sexpr("(OR 0 0)", &mut a).unwrap();
        assert!(qa.query(&t1).unwrap().contains(&t1.root()));
        assert!(!qa.query(&t0).unwrap().contains(&t0.root()));
    }

    #[test]
    fn rejecting_machine_selects_nothing() {
        let mut a = alpha();
        // Example 4.2 machine (F = {v1}) with Example 4.4's λ: on circuits
        // evaluating to 0 the run rejects, so nothing is selected even
        // though inner gates may evaluate to 1.
        let machine = super::super::twoway::example_4_2(&a);
        let mut qa = RankedQa::new(machine);
        let or = a.symbol("OR");
        for i in 2..6 {
            qa.set_selecting(StateId::from_index(i), or, true);
        }
        let t = from_sexpr("(AND (OR 1 1) 0)", &mut a).unwrap();
        assert_eq!(qa.query(&t).unwrap(), Vec::<NodeId>::new());
        let t = from_sexpr("(OR (OR 1 1) 0)", &mut a).unwrap();
        assert!(!qa.query(&t).unwrap().is_empty());
    }
}
