//! End-to-end tests of `qa-fleet --scope`: the per-state profile exports
//! (`scope.json`, `scope.folded`, `explain.txt`) must be byte-identical
//! across reruns, `--jobs N` parallelism, and `--mesh N` federation —
//! the same determinism contract `metrics.prom` already carries.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qa_fleet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qa-fleet"))
        .args(args)
        .output()
        .expect("spawn qa-fleet")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p.to_str().unwrap().to_string()
}

fn read(dir: &str, name: &str) -> String {
    let path = PathBuf::from(dir).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

const CORPUS: &[&str] = &[
    "--queries",
    "4",
    "--docs",
    "4",
    "--size",
    "48",
    "--seed",
    "7",
    "--scope",
];

const EXPORTS: [&str; 3] = ["scope.json", "scope.folded", "explain.txt"];

fn run_scoped(label: &str, extra: &[&str]) -> [(String, String); 3] {
    let dir = tmp(label);
    let out = qa_fleet(&[CORPUS, extra, &["--out-dir", &dir]].concat());
    assert!(
        out.status.success(),
        "{label} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    EXPORTS.map(|name| (name.to_string(), read(&dir, name)))
}

#[test]
fn scope_exports_are_byte_identical_across_jobs_and_reruns() {
    let baseline = run_scoped("scope-jobs-1", &["--jobs", "1"]);
    let parallel = run_scoped("scope-jobs-4", &["--jobs", "4"]);
    let rerun = run_scoped("scope-jobs-1-again", &["--jobs", "1"]);
    let (_, scope_json) = &baseline[0];
    assert!(
        scope_json.contains("\"machines\""),
        "scope.json has profile tables: {scope_json}"
    );
    let (_, explain) = &baseline[2];
    assert!(
        explain.contains("machine "),
        "explain is rendered: {explain}"
    );
    assert!(
        explain.contains("hot "),
        "explain names hot states: {explain}"
    );
    for (b, other, what) in baseline
        .iter()
        .zip(&parallel)
        .map(|(b, o)| (b, o, "--jobs 4"))
        .chain(baseline.iter().zip(&rerun).map(|(b, o)| (b, o, "rerun")))
    {
        assert_eq!(b.1, other.1, "{} diverged under {}", b.0, what);
    }
}

#[test]
fn mesh_federated_scope_matches_the_single_process_profile() {
    let single = run_scoped("scope-mesh-base", &["--jobs", "1"]);
    let meshed = run_scoped("scope-mesh-2", &["--mesh", "2"]);
    for (b, m) in single.iter().zip(&meshed) {
        assert_eq!(b.1, m.1, "{} diverged under --mesh 2", b.0);
    }
}
