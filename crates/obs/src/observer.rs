//! The [`Observer`] trait and its trivial implementations.

/// A monotone event counter maintained by the instrumented engines.
///
/// The set is closed: engines across the workspace agree on these names so
/// that metrics from a string run, a tree run and a decision procedure land
/// in one registry with one JSON schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Head moves of a 2DFA / transitions fired by a tree run.
    Steps,
    /// Direction changes of a two-way string head.
    HeadReversals,
    /// Transition-table lookups (`δ`, `δ↓`, `δ↑`, classifier steps, …).
    TableLookups,
    /// Node (re-)examinations by the worklist cut engines — how often a
    /// cut had to be recomputed around a node.
    CutRecomputations,
    /// Stay-transition rounds fired (Definition 5.11 machines).
    StayRounds,
    /// Selection-function probes (`λ(s, σ)` checks).
    SelectionChecks,
    /// Summaries / composite states materialized by a decision fixpoint or
    /// an automaton construction.
    SummariesExplored,
    /// Fixpoint rounds (Lemma 5.2 reachability, Thm. 6.3 saturation).
    FixpointIterations,
    /// Fuel / budget units consumed by a bounded procedure.
    BudgetConsumed,
    /// Times a fuel or summary budget was exhausted.
    BudgetTrips,
    /// Behavior-cache lookups answered from the cache (crossing-behavior
    /// columns, memoized up/stay classifications, interned decision
    /// summaries).
    CacheHits,
    /// Behavior-cache lookups that had to compute and insert a fresh entry.
    CacheMisses,
    /// Jobs completed by a fleet batch — the error-budget denominator for
    /// SLO rules such as `budget_trips_total / jobs_total`.
    Jobs,
    /// Scrape attempts that had to be retried after a transport failure.
    ScrapeRetries,
    /// Alert state-machine transitions (pending, firing, resolved) taken by
    /// the sentinel engine.
    AlertTransitions,
    /// HTTP requests accepted by a serving daemon (all endpoints, all
    /// statuses — the offered-load denominator for serving SLO rules).
    HttpRequests,
    /// Requests shed by admission control with `429 Retry-After` because
    /// the executor queue exceeded its configured depth.
    RequestsShed,
    /// Documents ingested into a resident document store (`PUT /doc`).
    DocIngests,
    /// MSO formulas compiled into query automata by a serving query cache
    /// (cache misses that paid the full compile pipeline).
    QueryCompiles,
    /// Compiled queries evicted from a bounded query cache to admit a
    /// fresh compile.
    CacheEvictions,
}

impl Counter {
    /// Every counter, in serialization order.
    pub const ALL: [Counter; 20] = [
        Counter::Steps,
        Counter::HeadReversals,
        Counter::TableLookups,
        Counter::CutRecomputations,
        Counter::StayRounds,
        Counter::SelectionChecks,
        Counter::SummariesExplored,
        Counter::FixpointIterations,
        Counter::BudgetConsumed,
        Counter::BudgetTrips,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::Jobs,
        Counter::ScrapeRetries,
        Counter::AlertTransitions,
        Counter::HttpRequests,
        Counter::RequestsShed,
        Counter::DocIngests,
        Counter::QueryCompiles,
        Counter::CacheEvictions,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (stable across the workspace; JSON order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// `snake_case` name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Steps => "steps",
            Counter::HeadReversals => "head_reversals",
            Counter::TableLookups => "table_lookups",
            Counter::CutRecomputations => "cut_recomputations",
            Counter::StayRounds => "stay_rounds",
            Counter::SelectionChecks => "selection_checks",
            Counter::SummariesExplored => "summaries_explored",
            Counter::FixpointIterations => "fixpoint_iterations",
            Counter::BudgetConsumed => "budget_consumed",
            Counter::BudgetTrips => "budget_trips",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::Jobs => "jobs",
            Counter::ScrapeRetries => "scrape_retries",
            Counter::AlertTransitions => "alert_transitions",
            Counter::HttpRequests => "http_requests",
            Counter::RequestsShed => "requests_shed",
            Counter::DocIngests => "doc_ingests",
            Counter::QueryCompiles => "query_compiles",
            Counter::CacheEvictions => "cache_evictions",
        }
    }
}

/// A value distribution tracked by a fixed-bucket histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Series {
    /// Total steps of one two-way string run.
    TraceLength,
    /// Total work of one tree run (transitions or node examinations).
    RunSteps,
    /// `|Assumed(w, i)|` / `|Assumed(t, v)|` per position or node.
    AssumedStates,
    /// Stay transitions fired at one node.
    StaysPerNode,
    /// States of a constructed machine (Hopcroft–Ullman composition,
    /// tiling reduction, Shepherdson, …).
    MachineStates,
    /// Nodes of a produced witness tree / length of a witness word.
    WitnessSize,
    /// Wall microseconds one `PUT /doc` ingest took, parse to receipt.
    IngestMicros,
    /// Wall microseconds one `POST /query` took, admission to response
    /// (compile + executor dispatch + two-pass evaluation).
    QueryMicros,
}

impl Series {
    /// Every series, in serialization order.
    pub const ALL: [Series; 8] = [
        Series::TraceLength,
        Series::RunSteps,
        Series::AssumedStates,
        Series::StaysPerNode,
        Series::MachineStates,
        Series::WitnessSize,
        Series::IngestMicros,
        Series::QueryMicros,
    ];

    /// Number of series.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (stable; JSON order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// `snake_case` name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Series::TraceLength => "trace_length",
            Series::RunSteps => "run_steps",
            Series::AssumedStates => "assumed_states",
            Series::StaysPerNode => "stays_per_node",
            Series::MachineStates => "machine_states",
            Series::WitnessSize => "witness_size",
            Series::IngestMicros => "ingest_micros",
            Series::QueryMicros => "query_micros",
        }
    }
}

/// An engine identity carried by the per-state profiling hooks
/// ([`Observer::state_visit`], [`Observer::transition_fired`]).
///
/// Like [`Counter`] the set is closed and densely indexed, so a profiler
/// can keep one fixed-size array of per-machine tables and two processes
/// serialize the same machine under the same name — the property the
/// fleet/mesh scope-merge determinism gates rely on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Machine {
    /// The two-way string head (`TwoDfa::run`), including runs made on
    /// behalf of `StringQa`, GSQA output scans and Shepherdson subjects.
    TwoDfa,
    /// Crossing-behavior column recurrences (Theorem 3.9 tables).
    Crossing,
    /// The Hopcroft–Ullman composition worklist (summary states explored).
    HuComposition,
    /// The ranked two-way cut engine (`TwoWayRanked`, QAr runs).
    Qar,
    /// Ranked bottom-up runs (`Dbta` / `Nbta` postorder folds).
    Dbtar,
    /// The unranked two-way cut engine (`TwoWayUnranked`, SQAu runs,
    /// including Definition 5.11 stay rounds).
    Qau,
    /// Unranked deterministic bottom-up runs (`Dbtau` classifier folds).
    Dbtau,
    /// Unranked nondeterministic bottom-up runs (`Nbtau` NFA folds).
    Nbtau,
    /// Decision-procedure fixpoints (Lemma 5.2 reachability, Prop. 6.1 /
    /// Thm. 6.3 saturation, string-decision product searches).
    Decision,
}

impl Machine {
    /// Every machine, in serialization order.
    pub const ALL: [Machine; 9] = [
        Machine::TwoDfa,
        Machine::Crossing,
        Machine::HuComposition,
        Machine::Qar,
        Machine::Dbtar,
        Machine::Qau,
        Machine::Dbtau,
        Machine::Nbtau,
        Machine::Decision,
    ];

    /// Number of machines.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (stable across the workspace; JSON order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// `snake_case` name used in JSON reports and collapsed-stack frames.
    pub fn name(self) -> &'static str {
        match self {
            Machine::TwoDfa => "twodfa",
            Machine::Crossing => "crossing",
            Machine::HuComposition => "hu_composition",
            Machine::Qar => "qar",
            Machine::Dbtar => "dbtar",
            Machine::Qau => "qau",
            Machine::Dbtau => "dbtau",
            Machine::Nbtau => "nbtau",
            Machine::Decision => "decision",
        }
    }

    /// The machine with dense index `i`, if any (inverse of
    /// [`Machine::index`], used by scope deserialization).
    pub fn from_index(i: usize) -> Option<Machine> {
        Machine::ALL.get(i).copied()
    }

    /// The machine serialized under `name`, if any.
    pub fn from_name(name: &str) -> Option<Machine> {
        Machine::ALL.iter().copied().find(|m| m.name() == name)
    }
}

/// A budget violation reported by [`Observer::checkpoint`].
///
/// Carried by watchdog sinks back into the run engine, which converts it
/// into the workspace error type (`Error::RunAborted`) and unwinds the run
/// gracefully — no panic, no partial output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    /// Which budget tripped: `"steps"`, `"head_reversals"`, `"wall_ms"`, ….
    pub what: &'static str,
    /// The configured budget.
    pub limit: u64,
    /// The observed value that exceeded it.
    pub actual: u64,
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} = {} exceeded budget {}",
            self.what, self.actual, self.limit
        )
    }
}

/// Event sink for instrumented engines.
///
/// Every method has an empty `#[inline]` default, so a sink only overrides
/// what it cares about and the all-default [`NoopObserver`] monomorphizes
/// each hook away entirely — the zero-cost contract the parity tests and
/// the `e2`/`e10` benches verify.
///
/// Engines hold `&mut O` for an `O: Observer`, which keeps sinks free to
/// buffer without synchronization; use [`MetricsObserver`] when the
/// aggregate must be shared across threads.
///
/// ## The zero-cost noop contract
///
/// An engine written against this trait must behave *identically* under
/// [`NoopObserver`] and under any recording sink: hooks report what the
/// algorithm did, they never steer it. The only sanctioned feedback paths
/// are [`Observer::checkpoint`] (a budget poll that may abort the run) and
/// [`Observer::is_enabled`] (which may skip *computing an event argument*,
/// never a step of the algorithm). Because every default body is empty and
/// `#[inline]`, `run_with(.., &mut NoopObserver)` compiles to the exact
/// uninstrumented loop.
///
/// ## Example: a custom sink over the certificate hooks
///
/// The three certificate/control hooks added for provenance and watchdogs —
/// [`Observer::selected`], [`Observer::stay_assign`] and
/// [`Observer::checkpoint`] — compose like any other hook:
///
/// ```
/// use qa_obs::{Abort, Observer};
///
/// /// Counts selection verdicts and aborts after a poll budget.
/// #[derive(Default)]
/// struct SelectionBudget {
///     selections: u32,
///     polls: u32,
/// }
///
/// impl Observer for SelectionBudget {
///     fn selected(&mut self, pos: u32, state: u32, _sym: u32) {
///         // fired once per selected position, with the witnessing state
///         let _ = (pos, state);
///         self.selections += 1;
///     }
///     fn stay_assign(&mut self, _parent: u32, _child: u32, _state: u32) {
///         // fired once per child on every Definition 5.11 stay round
///     }
///     fn checkpoint(&mut self) -> Result<(), Abort> {
///         self.polls += 1;
///         if self.polls > 1000 {
///             return Err(Abort { what: "polls", limit: 1000, actual: self.polls as u64 });
///         }
///         Ok(())
///     }
/// }
///
/// let mut sink = SelectionBudget::default();
/// sink.selected(3, 1, 0);
/// assert_eq!(sink.selections, 1);
/// assert!(sink.checkpoint().is_ok());
/// ```
///
/// [`MetricsObserver`]: crate::MetricsObserver
pub trait Observer {
    /// Bump `counter` by `n`.
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Record one sample `value` into `series`.
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        let _ = (series, value);
    }

    /// A two-way configuration: `state` at tape/tree position `pos`,
    /// about to move in `dir` (−1 left, 0 halt/stay, +1 right).
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        let _ = (state, pos, dir);
    }

    /// Enter a named phase (bottom-up pass, saturation round, …).
    /// Phases nest; sinks that time phases match this with
    /// [`Observer::phase_end`].
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Leave the innermost open phase named `name`.
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        let _ = name;
    }

    /// A selection-scan verdict: `pos` was selected because the run assumed
    /// `state` there and `λ(state, sym) = 1`.
    ///
    /// `pos` is in the same coordinate space as [`Observer::config`] events
    /// from the same engine: tape positions (0 = `⊳`) for string machines,
    /// node indices for tree machines. The witnessing `state` is the first
    /// assumed state with a selecting `λ` entry — the paper's certificate
    /// that the position belongs to the query result.
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        let _ = (pos, state, sym);
    }

    /// A stay transition (Definition 5.11) assigned `state` to the child
    /// node `child` of `parent` — one event per child, together forming the
    /// GSQA child-run output that certifies the assignment.
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        let _ = (parent, child, state);
    }

    /// The engine `machine` resolved its current state while reading
    /// `sym`: a 2DFA consulted `δ(state, sym)`, a bottom-up fold landed in
    /// `state` at a `sym`-labelled node, a fixpoint examined a summary.
    ///
    /// Fired once per unit of state resolution on every engine hot path —
    /// the raw feed for per-state visit histograms. `sym` is the engine's
    /// dense symbol index ([`u32::MAX`] when no single symbol applies,
    /// e.g. a fixpoint round over a whole summary set).
    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        let _ = (machine, state, sym);
    }

    /// The engine `machine` fired the transition `from --sym--> to`.
    ///
    /// Paired with [`Observer::state_visit`]: a visit reports where the
    /// engine *looked*, a fired transition reports where it *went*. Stuck
    /// configurations therefore show up as visits with no matching fire —
    /// exactly the halting positions `explain_run` highlights.
    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        let _ = (machine, from, sym, to);
    }

    /// A budget checkpoint, polled by run engines once per unit of work
    /// (one head move, one node examination, one fixpoint round).
    ///
    /// The default returns `Ok(())` unconditionally, so [`NoopObserver`]
    /// and every ordinary sink compile the poll away — the zero-cost
    /// contract extends to checkpoints. A watchdog sink overrides this to
    /// return `Err(`[`Abort`]`)` when a step, reversal or wall-clock budget
    /// is exhausted; engines translate that into a graceful
    /// `Error::RunAborted` instead of running forever.
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Abort> {
        Ok(())
    }

    /// Whether this sink records anything. Engines may use this to skip
    /// *computing* an expensive event argument; they must not skip the
    /// algorithm itself.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The do-nothing sink: instrumented code paths compile to the exact
/// uninstrumented code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Forwarding impl so engines can be handed a reborrowed sink.
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        (**self).count(counter, n);
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        (**self).record(series, value);
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        (**self).config(state, pos, dir);
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        (**self).phase_start(name);
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        (**self).phase_end(name);
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        (**self).selected(pos, state, sym);
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        (**self).stay_assign(parent, child, state);
    }
    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        (**self).state_visit(machine, state, sym);
    }
    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        (**self).transition_fired(machine, from, sym, to);
    }
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Abort> {
        (**self).checkpoint()
    }
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// Fan an event stream out to two sinks (e.g. a [`RunTrace`] for the
/// configurations and a [`MetricsObserver`] for the aggregate).
///
/// [`RunTrace`]: crate::RunTrace
/// [`MetricsObserver`]: crate::MetricsObserver
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    #[inline]
    fn count(&mut self, counter: Counter, n: u64) {
        self.0.count(counter, n);
        self.1.count(counter, n);
    }
    #[inline]
    fn record(&mut self, series: Series, value: u64) {
        self.0.record(series, value);
        self.1.record(series, value);
    }
    #[inline]
    fn config(&mut self, state: u32, pos: u32, dir: i8) {
        self.0.config(state, pos, dir);
        self.1.config(state, pos, dir);
    }
    #[inline]
    fn phase_start(&mut self, name: &'static str) {
        self.0.phase_start(name);
        self.1.phase_start(name);
    }
    #[inline]
    fn phase_end(&mut self, name: &'static str) {
        self.0.phase_end(name);
        self.1.phase_end(name);
    }
    #[inline]
    fn selected(&mut self, pos: u32, state: u32, sym: u32) {
        self.0.selected(pos, state, sym);
        self.1.selected(pos, state, sym);
    }
    #[inline]
    fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
        self.0.stay_assign(parent, child, state);
        self.1.stay_assign(parent, child, state);
    }
    #[inline]
    fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
        self.0.state_visit(machine, state, sym);
        self.1.state_visit(machine, state, sym);
    }
    #[inline]
    fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
        self.0.transition_fired(machine, from, sym, to);
        self.1.transition_fired(machine, from, sym, to);
    }
    /// Both sides are polled (so both watchdogs advance their clocks); the
    /// first abort wins.
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Abort> {
        let a = self.0.checkpoint();
        let b = self.1.checkpoint();
        a.and(b)
    }
    #[inline]
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, s) in Series::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, m) in Machine::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(Machine::from_index(i), Some(*m));
            assert_eq!(Machine::from_name(m.name()), Some(*m));
        }
        assert_eq!(Machine::from_index(Machine::COUNT), None);
        assert_eq!(Machine::from_name("no_such_machine"), None);
    }

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopObserver.is_enabled());
        let mut n = NoopObserver;
        let fwd: &mut NoopObserver = &mut n;
        assert!(!fwd.is_enabled());
    }

    /// Records every hook invocation as a rendered event line, so tests can
    /// compare complete event streams across sinks.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl Observer for Recorder {
        fn count(&mut self, counter: Counter, n: u64) {
            self.events.push(format!("count {} {n}", counter.name()));
        }
        fn record(&mut self, series: Series, value: u64) {
            self.events
                .push(format!("record {} {value}", series.name()));
        }
        fn config(&mut self, state: u32, pos: u32, dir: i8) {
            self.events.push(format!("config {state} {pos} {dir}"));
        }
        fn phase_start(&mut self, name: &'static str) {
            self.events.push(format!("phase_start {name}"));
        }
        fn phase_end(&mut self, name: &'static str) {
            self.events.push(format!("phase_end {name}"));
        }
        fn selected(&mut self, pos: u32, state: u32, sym: u32) {
            self.events.push(format!("selected {pos} {state} {sym}"));
        }
        fn stay_assign(&mut self, parent: u32, child: u32, state: u32) {
            self.events
                .push(format!("stay_assign {parent} {child} {state}"));
        }
        fn state_visit(&mut self, machine: Machine, state: u32, sym: u32) {
            self.events
                .push(format!("state_visit {} {state} {sym}", machine.name()));
        }
        fn transition_fired(&mut self, machine: Machine, from: u32, sym: u32, to: u32) {
            self.events.push(format!(
                "transition_fired {} {from} {sym} {to}",
                machine.name()
            ));
        }
    }

    /// Fire every hook exactly once through `obs`.
    fn fire_all<O: Observer>(obs: &mut O) {
        obs.count(Counter::Steps, 3);
        obs.record(Series::TraceLength, 7);
        obs.config(1, 2, -1);
        obs.phase_start("p");
        obs.phase_end("p");
        obs.selected(4, 5, 6);
        obs.stay_assign(8, 9, 10);
        obs.state_visit(Machine::TwoDfa, 1, 0);
        obs.transition_fired(Machine::TwoDfa, 1, 0, 2);
    }

    #[test]
    fn tee_forwards_every_hook_to_both_sinks() {
        let mut tee = Tee(Recorder::default(), Recorder::default());
        fire_all(&mut tee);

        let mut reference = Recorder::default();
        fire_all(&mut reference);

        assert_eq!(reference.events.len(), 9, "one event per hook");
        assert_eq!(tee.0.events, reference.events);
        assert_eq!(tee.1.events, reference.events);
    }

    #[test]
    fn reborrow_forwards_every_hook() {
        let mut rec = Recorder::default();
        fire_all(&mut (&mut rec));

        let mut reference = Recorder::default();
        fire_all(&mut reference);
        assert_eq!(rec.events, reference.events);
    }

    /// Sink whose checkpoint fails after a configured number of polls.
    struct Tripwire {
        polls_left: u32,
    }

    impl Observer for Tripwire {
        fn checkpoint(&mut self) -> Result<(), Abort> {
            if self.polls_left == 0 {
                return Err(Abort {
                    what: "polls",
                    limit: 0,
                    actual: 1,
                });
            }
            self.polls_left -= 1;
            Ok(())
        }
    }

    #[test]
    fn default_checkpoint_is_ok() {
        assert_eq!(NoopObserver.checkpoint(), Ok(()));
        assert_eq!(Recorder::default().checkpoint(), Ok(()));
        let mut n = NoopObserver;
        assert_eq!((&mut (&mut n)).checkpoint(), Ok(()));
    }

    #[test]
    fn tee_checkpoint_polls_both_and_first_abort_wins() {
        // Left trips first: both sides still get polled every round.
        let mut tee = Tee(Tripwire { polls_left: 1 }, Tripwire { polls_left: 3 });
        assert_eq!(tee.checkpoint(), Ok(()));
        assert!(tee.checkpoint().is_err());
        // The right side consumed both polls too.
        assert_eq!(tee.1.polls_left, 1);

        // Right side trips: its abort surfaces through the Tee.
        let mut tee = Tee(NoopObserver, Tripwire { polls_left: 0 });
        let abort = tee.checkpoint().unwrap_err();
        assert_eq!(abort.what, "polls");
        assert_eq!(abort.to_string(), "polls = 1 exceeded budget 0");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Series::ALL.iter().map(|s| s.name()));
        names.extend(Machine::ALL.iter().map(|m| m.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
