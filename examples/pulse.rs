//! The `qa-pulse` live ops surface end to end.
//!
//! A loop of Theorem 6.3 non-emptiness checks runs with a `Tee` of a
//! shared [`Metrics`] registry and a [`SpanProfiler`], while a
//! [`PulseServer`] serves the usual operational endpoints on an ephemeral
//! loopback port. The example then scrapes itself over plain TCP — the
//! same thing `curl` or a Prometheus agent would do — and prints what an
//! operator would see:
//!
//! 1. `/healthz` and `/readyz` — liveness vs readiness;
//! 2. `/metrics` — Prometheus text exposition of the decision-procedure
//!    counters plus `qa_build_info` (the `qa_heap_*` gauges would join
//!    them in a binary that installs the counting allocator);
//! 3. `/profile` — the span profile in Brendan Gregg collapsed-stack
//!    format, ready for `flamegraph.pl` / `inferno-flamegraph`.
//!
//! Run with: `cargo run --example pulse`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use query_automata::obs::{Metrics, Tee};
use query_automata::prelude::*;
use query_automata::pulse::Weight;

/// Minimal HTTP/1.1 GET against the pulse server; returns the body.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to pulse server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}

fn main() {
    // ── Start the ops surface before any work runs ───────────────────────
    let metrics = Arc::new(Metrics::new());
    let state = PulseState::new(Arc::clone(&metrics), "qa_pulse_example");
    let server = PulseServer::serve("127.0.0.1:0", Arc::clone(&state)).expect("bind loopback");
    let addr = server.local_addr();
    println!("pulse server on http://{addr}");

    // Liveness is immediate; readiness flips only once we are serving
    // meaningful numbers.
    println!("/healthz -> {}", scrape(addr, "/healthz").trim_end());
    println!(
        "/readyz (warming) -> {}",
        scrape(addr, "/readyz").trim_end()
    );

    // ── The workload: repeated Theorem 6.3 non-emptiness checks ──────────
    // Each pass saturates the summary fixpoint for the Example 4.4 boolean
    // circuit query and materializes a witness, feeding the shared registry
    // (scraped live) and a per-pass span profiler (merged into /profile).
    let circuits = Alphabet::from_names(["AND", "OR", "0", "1"]);
    let qa = example_4_4(&circuits);
    for pass in 0..4 {
        let mut profiler = SpanProfiler::new();
        let witness = {
            let mut tee = Tee(metrics.observer(), &mut profiler);
            query_automata::decision::ranked_decisions::non_emptiness_with(
                &qa,
                query_automata::decision::ranked_decisions::DEFAULT_MAX_ITEMS,
                &mut tee,
            )
            .unwrap()
        };
        state.merge_profile(profiler.profile());
        if pass == 0 {
            let w = witness.expect("example 4.4 is non-empty");
            println!(
                "witness: {} selects {:?}",
                to_sexpr(&w.tree, &circuits),
                w.node
            );
        }
    }
    state.set_ready();

    // ── What an operator sees ────────────────────────────────────────────
    println!("/readyz (ready) -> {}", scrape(addr, "/readyz").trim_end());

    let prom = scrape(addr, "/metrics");
    query_automata::pulse::validate_prometheus(&prom).expect("valid Prometheus exposition");
    println!("\n=== /metrics (decision-procedure families) ===");
    for line in prom.lines().filter(|l| {
        l.starts_with("qa_pulse_example_fixpoint")
            || l.starts_with("qa_pulse_example_summaries")
            || l.starts_with("qa_build_info")
            || l.starts_with("qa_heap_live_bytes")
    }) {
        println!("{line}");
    }

    println!("\n=== /profile (collapsed stacks, wall-clock weights) ===");
    print!("{}", scrape(addr, "/profile"));
    // The same tree weighted by allocated bytes instead of nanoseconds
    // (all zeros unless a counting allocator is installed).
    let by_alloc = state.profile_collapsed(Weight::AllocBytes);
    println!(
        "alloc-weighted profile: {} line(s) with nonzero weight",
        by_alloc.lines().count()
    );

    server.shutdown();
    println!("\npulse server stopped");
}
