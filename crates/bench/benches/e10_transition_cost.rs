//! E10 (Section 5.2 remark): each 2DTAu transition costs time linear in
//! the fanout — slender down transitions via the `x y* z` lookup and
//! regular up transitions via one classifier sweep. Measured as total run
//! time per node on flat trees of growing fanout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qa_trees::Tree;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_transition_cost");
    let sigma = qa_bench::circuit_alphabet();
    let qa = qa_core::unranked::query::example_5_9(&sigma);
    let or = sigma.symbol("OR");
    let zero = sigma.symbol("0");
    let one = sigma.symbol("1");

    for fanout in [32usize, 256, 2048] {
        let mut t = Tree::leaf(or);
        for i in 0..fanout {
            t.add_child(t.root(), if i % 2 == 0 { zero } else { one });
        }
        group.throughput(Throughput::Elements(t.num_nodes() as u64));
        group.bench_with_input(BenchmarkId::new("flat_or_gate", fanout), &t, |b, t| {
            b.iter(|| qa.query(t).unwrap().len())
        });
    }

    // and a deep/wide mix
    for n in [100usize, 1000] {
        let t = qa_bench::random_circuit(n, n as u64);
        group.throughput(Throughput::Elements(t.num_nodes() as u64));
        group.bench_with_input(
            BenchmarkId::new("random_circuit", t.num_nodes()),
            &t,
            |b, t| b.iter(|| qa.query(t).unwrap().len()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
