//! Deterministic finite automata.

use std::collections::VecDeque;

use qa_base::Symbol;

use crate::{Nfa, StateId};

/// A deterministic finite automaton with a possibly partial transition table.
///
/// A missing transition rejects (the run "falls off"). [`Dfa::totalize`]
/// adds an explicit dead state when a total table is needed (complementation,
/// minimization).
///
/// ```
/// use qa_base::Alphabet;
/// use qa_strings::Dfa;
/// let mut sigma = Alphabet::new();
/// let (a, b) = (sigma.intern("a"), sigma.intern("b"));
/// // even number of a's
/// let mut d = Dfa::new(sigma.len());
/// let even = d.add_state();
/// let odd = d.add_state();
/// d.set_initial(even);
/// d.set_accepting(even, true);
/// d.set_transition(even, a, odd);
/// d.set_transition(odd, a, even);
/// d.set_transition(even, b, even);
/// d.set_transition(odd, b, odd);
/// assert!(d.accepts(&[a, b, a]));
/// assert!(!d.accepts(&[a, b]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    alphabet_len: usize,
    /// `transitions[state][symbol]` = successor, if defined.
    transitions: Vec<Vec<Option<StateId>>>,
    initial: Option<StateId>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Empty DFA (no states) over an alphabet of `alphabet_len` symbols.
    pub fn new(alphabet_len: usize) -> Self {
        Dfa {
            alphabet_len,
            transitions: Vec::new(),
            initial: None,
            accepting: Vec::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Alphabet size this DFA was built for.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId::from_index(self.transitions.len());
        self.transitions.push(vec![None; self.alphabet_len]);
        self.accepting.push(false);
        id
    }

    /// Set the (unique) initial state.
    pub fn set_initial(&mut self, state: StateId) {
        self.initial = Some(state);
    }

    /// The initial state. Panics if never set.
    pub fn initial(&self) -> StateId {
        self.initial.expect("DFA has no initial state")
    }

    /// Set whether `state` accepts.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state.index()] = accepting;
    }

    /// Whether `state` accepts.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// Define the transition `from --sym--> to` (overwrites).
    pub fn set_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        debug_assert!(sym.index() < self.alphabet_len, "symbol outside alphabet");
        self.transitions[from.index()][sym.index()] = Some(to);
    }

    /// The successor of `from` on `sym`, if defined.
    pub fn next(&self, from: StateId, sym: Symbol) -> Option<StateId> {
        self.transitions[from.index()][sym.index()]
    }

    /// Run from the initial state over `word`; `None` if the run falls off.
    pub fn run(&self, word: &[Symbol]) -> Option<StateId> {
        self.run_from(self.initial(), word)
    }

    /// Run from `state` over `word`.
    pub fn run_from(&self, state: StateId, word: &[Symbol]) -> Option<StateId> {
        let mut cur = state;
        for &sym in word {
            cur = self.next(cur, sym)?;
        }
        Some(cur)
    }

    /// The sequence of states visited on `word`, starting with the initial
    /// state (length `|word| + 1` when the run completes).
    pub fn trace(&self, word: &[Symbol]) -> Option<Vec<StateId>> {
        let mut cur = self.initial();
        let mut out = Vec::with_capacity(word.len() + 1);
        out.push(cur);
        for &sym in word {
            cur = self.next(cur, sym)?;
            out.push(cur);
        }
        Some(out)
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.run(word).is_some_and(|s| self.is_accepting(s))
    }

    /// Whether every state has a successor on every symbol.
    pub fn is_total(&self) -> bool {
        self.transitions
            .iter()
            .all(|row| row.iter().all(|t| t.is_some()))
    }

    /// Return an equivalent total DFA (adds a dead state if needed).
    pub fn totalize(&self) -> Dfa {
        if self.is_total() {
            return self.clone();
        }
        let mut d = self.clone();
        let dead = d.add_state();
        for row in d.transitions.iter_mut() {
            for t in row.iter_mut() {
                if t.is_none() {
                    *t = Some(dead);
                }
            }
        }
        d
    }

    /// The complement DFA (accepts exactly the rejected words).
    pub fn complement(&self) -> Dfa {
        let mut d = self.totalize();
        for acc in d.accepting.iter_mut() {
            *acc = !*acc;
        }
        d
    }

    /// View as an NFA (for products with genuinely nondeterministic machines).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::new(self.alphabet_len);
        for _ in 0..self.num_states() {
            n.add_state();
        }
        for (i, row) in self.transitions.iter().enumerate() {
            for (sym_idx, t) in row.iter().enumerate() {
                if let Some(to) = t {
                    n.add_transition(StateId::from_index(i), Symbol::from_index(sym_idx), *to);
                }
            }
        }
        if let Some(init) = self.initial {
            n.set_initial(init);
        }
        for (i, &acc) in self.accepting.iter().enumerate() {
            if acc {
                n.set_accepting(StateId::from_index(i), true);
            }
        }
        n
    }

    /// Product DFA; `combine(a_accepts, b_accepts)` decides acceptance.
    ///
    /// Only reachable product states are constructed. Both operands are
    /// totalized first so the product is total.
    pub fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "product over mismatched alphabets"
        );
        let a = self.totalize();
        let b = other.totalize();
        let mut prod = Dfa::new(self.alphabet_len);
        let mut index: std::collections::HashMap<(StateId, StateId), StateId> =
            std::collections::HashMap::new();
        let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
        let start = (a.initial(), b.initial());
        let id = prod.add_state();
        index.insert(start, id);
        prod.set_initial(id);
        queue.push_back(start);
        while let Some((sa, sb)) = queue.pop_front() {
            let from = index[&(sa, sb)];
            if combine(a.is_accepting(sa), b.is_accepting(sb)) {
                prod.set_accepting(from, true);
            }
            for sym_idx in 0..self.alphabet_len {
                let sym = Symbol::from_index(sym_idx);
                let ta = a.next(sa, sym).expect("totalized");
                let tb = b.next(sb, sym).expect("totalized");
                let to = *index.entry((ta, tb)).or_insert_with(|| {
                    queue.push_back((ta, tb));
                    prod.add_state()
                });
                prod.set_transition(from, sym, to);
            }
        }
        prod
    }

    /// Intersection `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && y)
    }

    /// Union `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x || y)
    }

    /// Difference `L(self) \ L(other)`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && !y)
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        let Some(init) = self.initial else {
            return true;
        };
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::from([init]);
        seen[init.index()] = true;
        while let Some(s) = queue.pop_front() {
            if self.is_accepting(s) {
                return false;
            }
            for t in self.transitions[s.index()].iter().flatten() {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    queue.push_back(*t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if any.
    pub fn shortest_witness(&self) -> Option<Vec<Symbol>> {
        self.to_nfa().shortest_witness()
    }

    /// Whether `L(self) ⊆ L(other)`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty()
    }

    /// Whether `L(self) = L(other)`.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.is_subset_of(other) && other.is_subset_of(self)
    }

    /// Minimize (Moore partition refinement over the trimmed, total DFA).
    pub fn minimize(&self) -> Dfa {
        crate::minimize::minimize(self)
    }

    /// The left-to-right state sequence assigned to each position of `word`:
    /// entry `i` is the state after reading `word[..=i]`.
    ///
    /// This is `δ*(s0, w1…wi)` from the proof of Büchi's Theorem; the
    /// Hopcroft–Ullman composition (Lemma 3.10) recomputes exactly this
    /// sequence with a two-way automaton in constant space.
    pub fn prefix_states(&self, word: &[Symbol]) -> Option<Vec<StateId>> {
        let t = self.trace(word)?;
        Some(t[1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn even_a() -> (Dfa, Symbol, Symbol) {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        let mut d = Dfa::new(2);
        let even = d.add_state();
        let odd = d.add_state();
        d.set_initial(even);
        d.set_accepting(even, true);
        d.set_transition(even, a, odd);
        d.set_transition(odd, a, even);
        d.set_transition(even, b, even);
        d.set_transition(odd, b, odd);
        (d, a, b)
    }

    #[test]
    fn run_and_accept() {
        let (d, a, b) = even_a();
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[a, a]));
        assert!(d.accepts(&[b, a, b, a]));
        assert!(!d.accepts(&[a]));
    }

    #[test]
    fn partial_transitions_reject() {
        let mut d = Dfa::new(1);
        let q0 = d.add_state();
        d.set_initial(q0);
        d.set_accepting(q0, true);
        assert!(d.accepts(&[]));
        assert!(!d.accepts(&[Symbol::from_index(0)]));
        assert!(!d.is_total());
        assert!(d.totalize().is_total());
    }

    #[test]
    fn complement_flips_membership() {
        let (d, a, b) = even_a();
        let c = d.complement();
        assert!(!c.accepts(&[]));
        assert!(c.accepts(&[a]));
        assert!(c.accepts(&[a, b, b]));
        assert!(!c.accepts(&[a, a]));
    }

    #[test]
    fn boolean_products() {
        let (d, a, b) = even_a();
        // ends in b
        let mut e = Dfa::new(2);
        let q0 = e.add_state();
        let q1 = e.add_state();
        e.set_initial(q0);
        e.set_accepting(q1, true);
        e.set_transition(q0, a, q0);
        e.set_transition(q1, a, q0);
        e.set_transition(q0, b, q1);
        e.set_transition(q1, b, q1);

        let both = d.intersect(&e);
        assert!(both.accepts(&[a, a, b]));
        assert!(!both.accepts(&[a, b]));
        assert!(!both.accepts(&[a, a]));

        let either = d.union(&e);
        assert!(either.accepts(&[a, b]));
        assert!(either.accepts(&[a, a]));
        assert!(!either.accepts(&[a]));

        let diff = d.difference(&e);
        assert!(diff.accepts(&[a, a]));
        assert!(!diff.accepts(&[a, a, b]));
    }

    #[test]
    fn emptiness_subset_equivalence() {
        let (d, _, _) = even_a();
        assert!(!d.is_empty());
        assert!(d.intersect(&d.complement()).is_empty());
        assert!(d.is_subset_of(&d.union(&d.complement())));
        assert!(d.equivalent(&d.clone()));
        assert!(!d.equivalent(&d.complement()));
    }

    #[test]
    fn trace_and_prefix_states() {
        let (d, a, _) = even_a();
        let trace = d.trace(&[a, a, a]).unwrap();
        assert_eq!(trace.len(), 4);
        let prefix = d.prefix_states(&[a, a, a]).unwrap();
        assert_eq!(prefix.len(), 3);
        assert_eq!(prefix[2], trace[3]);
    }

    #[test]
    fn shortest_witness_of_intersection() {
        let (d, a, b) = even_a();
        let mut needs_b = Dfa::new(2);
        let q0 = needs_b.add_state();
        let q1 = needs_b.add_state();
        needs_b.set_initial(q0);
        needs_b.set_accepting(q1, true);
        needs_b.set_transition(q0, a, q0);
        needs_b.set_transition(q0, b, q1);
        needs_b.set_transition(q1, a, q1);
        needs_b.set_transition(q1, b, q1);
        let w = d.intersect(&needs_b).shortest_witness().unwrap();
        assert_eq!(w, vec![b]);
    }
}
