//! E4 (Lemma 5.2): NBTAu non-emptiness is PTIME — measured polynomial
//! scaling in the number of states of a chain-shaped automaton family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_lemma52_emptiness");
    for k in [4usize, 16, 64] {
        let n = qa_bench::chain_nbtau(k);
        group.bench_with_input(BenchmarkId::new("is_nonempty", k), &n, |b, n| {
            b.iter(|| assert!(qa_core::unranked::emptiness::is_nonempty(n)))
        });
        if k <= 16 {
            group.bench_with_input(BenchmarkId::new("witness", k), &n, |b, n| {
                b.iter(|| qa_core::unranked::emptiness::witness(n).unwrap().num_nodes())
            });
        }
    }
    // and on a real automaton: the Figure 2 DTD
    let (_, dtd) = qa_xml::figures::bibliography().unwrap();
    let auto = qa_xml::validate::to_automaton(&dtd).unwrap();
    group.bench_function("dtd_nonempty", |b| {
        b.iter(|| assert!(qa_core::unranked::emptiness::is_nonempty(&auto)))
    });
    group.finish();
}

fn config() -> Criterion {
    qa_bench::quick_criterion()
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
