//! Lemma 3.10 (Hopcroft–Ullman): composing a left-to-right DFA and a
//! right-to-left DFA into one two-way machine.
//!
//! A [`Bimachine`] is the declarative object: a total DFA `M₁` read left to
//! right, a total DFA `M₂` read right to left, and an output function over
//! `(p, q, σ)`. Its function is trivially computable in two passes with
//! O(n) extra space ([`Bimachine::run`]).
//!
//! [`compose`] builds the *actual two-way automaton* of Lemma 3.10 — a
//! [`Gsqa`] that computes the same function with **no** auxiliary storage:
//! it walks right simulating `M₁`, then walks back simulating `M₂`, and
//! recovers the `M₁` state at each position by the backwards-simulation
//! trick of the lemma's proof (γ-sets; when the preimage is ambiguous, dive
//! left until all-but-one γ-set dies out or `⊳` is reached, then walk right
//! with two witness states until they merge — the merge point is where the
//! backward sweep resumes). This construction is the engine behind
//! Theorems 3.9, 4.8 and 5.17.

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_obs::{Counter, Machine, NoopObserver, Observer, Series};
use qa_strings::{Dfa, StateId};

use crate::gsqa::Gsqa;
use crate::tape::Tape;
use crate::twodfa::{Dir, TwoDfaBuilder};

/// A bimachine: `output(p_i, q_i, w_i)` at every position `i`, where
/// `p_i = δ₁*(p₀, w₁…wᵢ)` and `q_i = δ₂*(q₀, w_n…wᵢ)`.
#[derive(Clone, Debug)]
pub struct Bimachine {
    left: Dfa,
    right: Dfa,
    /// `output[p][q][sym]` — dense Γ symbol.
    output: Vec<Vec<Vec<u32>>>,
    gamma_len: usize,
}

impl Bimachine {
    /// Build from two **total** DFAs and an output function.
    pub fn new(
        left: Dfa,
        right: Dfa,
        gamma_len: usize,
        output: impl Fn(StateId, StateId, Symbol) -> u32,
    ) -> Result<Self> {
        if !left.is_total() || !right.is_total() {
            return Err(Error::ill_formed(
                "bimachine",
                "component DFAs must be total (call totalize())",
            ));
        }
        if left.alphabet_len() != right.alphabet_len() {
            return Err(Error::ill_formed(
                "bimachine",
                "component DFAs must share an alphabet",
            ));
        }
        let table: Vec<Vec<Vec<u32>>> = (0..left.num_states())
            .map(|p| {
                (0..right.num_states())
                    .map(|q| {
                        (0..left.alphabet_len())
                            .map(|a| {
                                let g = output(
                                    StateId::from_index(p),
                                    StateId::from_index(q),
                                    Symbol::from_index(a),
                                );
                                debug_assert!((g as usize) < gamma_len);
                                g
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Ok(Bimachine {
            left,
            right,
            output: table,
            gamma_len,
        })
    }

    /// The left-to-right component.
    pub fn left(&self) -> &Dfa {
        &self.left
    }

    /// The right-to-left component.
    pub fn right(&self) -> &Dfa {
        &self.right
    }

    /// Output alphabet size.
    pub fn gamma_len(&self) -> usize {
        self.gamma_len
    }

    /// The output symbol for `(p, q, sym)`.
    pub fn output_of(&self, p: StateId, q: StateId, sym: Symbol) -> u32 {
        self.output[p.index()][q.index()][sym.index()]
    }

    /// Two-pass evaluation: O(n) time, O(n) auxiliary space.
    pub fn run(&self, word: &[Symbol]) -> Vec<u32> {
        let n = word.len();
        let mut out = vec![0u32; n];
        // forward states p_i
        let mut p = self.left.initial();
        let mut ps = Vec::with_capacity(n);
        for &sym in word {
            p = self.left.next(p, sym).expect("total DFA");
            ps.push(p);
        }
        // backward states q_i, consumed immediately
        let mut q = self.right.initial();
        for i in (0..n).rev() {
            q = self.right.next(q, word[i]).expect("total DFA");
            out[i] = self.output_of(ps[i], q, word[i]);
        }
        out
    }
}

/// Composite states of the Lemma 3.10 machine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CState {
    /// Forward sweep simulating `M₁`; holds `p_i`.
    Fwd(StateId),
    /// Backward sweep: `p` is the `M₁` state at the current position,
    /// `q` the `M₂` state accumulated strictly to the right.
    Back { p: StateId, q: StateId },
    /// γ-set dive: `buckets[p']` maps each `M₁` state at the current
    /// position to the candidate predecessor it leads to (if any);
    /// `pair` holds two witness states from different buckets — located at
    /// the current cell when `pair_here` (the freshly-seeded dive) and one
    /// cell to the right otherwise; `q` is carried for the resume.
    Gamma {
        buckets: Vec<Option<StateId>>,
        pair: (StateId, StateId),
        pair_here: bool,
        q: StateId,
    },
    /// First (no-op) step of the merge walk.
    WalkFresh {
        x: StateId,
        y: StateId,
        p_true: StateId,
        q: StateId,
    },
    /// Merge walk proper: advance both witnesses until they coincide.
    Walk {
        x: StateId,
        y: StateId,
        p_true: StateId,
        q: StateId,
    },
}

/// Build the two-way GSQA of Lemma 3.10 from a bimachine.
///
/// The construction is exact for every input; state count is worst-case
/// exponential in `|M₁|` (the γ-set bucket maps), matching the lemma's
/// generality, but only reachable composite states are materialized.
pub fn compose(bim: &Bimachine) -> Result<Gsqa> {
    compose_with(bim, &mut NoopObserver)
}

/// [`compose`] with an [`Observer`]: every composite state popped from the
/// construction worklist is counted as a [`Counter::SummariesExplored`], and
/// the size of the finished machine is recorded under
/// [`Series::MachineStates`]. With [`NoopObserver`] this monomorphizes to
/// exactly `compose`.
pub fn compose_with<O: Observer>(bim: &Bimachine, obs: &mut O) -> Result<Gsqa> {
    let m1 = &bim.left;
    let m2 = &bim.right;
    let sigma = m1.alphabet_len();

    // Intern composite states while materializing the transition table.
    let mut builder = TwoDfaBuilder::new(sigma);
    let mut index: HashMap<CState, StateId> = HashMap::new();
    let mut pending: Vec<CState> = Vec::new();
    // (state, output row) collected for the Gsqa.
    let mut outputs: Vec<(StateId, Symbol, u32)> = Vec::new();

    fn intern(
        builder: &mut TwoDfaBuilder,
        index: &mut HashMap<CState, StateId>,
        pending: &mut Vec<CState>,
        st: CState,
    ) -> StateId {
        if let Some(&id) = index.get(&st) {
            return id;
        }
        let id = builder.add_state();
        index.insert(st.clone(), id);
        pending.push(st);
        id
    }

    let start = intern(
        &mut builder,
        &mut index,
        &mut pending,
        CState::Fwd(m1.initial()),
    );
    builder.set_initial(start);

    while let Some(st) = pending.pop() {
        if let Err(a) = obs.checkpoint() {
            obs.count(Counter::BudgetTrips, 1);
            return Err(Error::aborted(a.what, a.limit, a.actual));
        }
        obs.count(Counter::SummariesExplored, 1);
        let id = index[&st];
        obs.state_visit(Machine::HuComposition, id.index() as u32, u32::MAX);
        match &st {
            CState::Fwd(p) => {
                let p = *p;
                builder.set_action(id, Tape::LeftMarker, Dir::Right, id);
                for a in 0..sigma {
                    let sym = Symbol::from_index(a);
                    let p2 = m1.next(p, sym).expect("total");
                    let nxt = intern(&mut builder, &mut index, &mut pending, CState::Fwd(p2));
                    builder.set_action(id, Tape::Sym(sym), Dir::Right, nxt);
                }
                // At ⊲: turn around into the backward sweep.
                let back = intern(
                    &mut builder,
                    &mut index,
                    &mut pending,
                    CState::Back { p, q: m2.initial() },
                );
                builder.set_action(id, Tape::RightMarker, Dir::Left, back);
                // Backward states are where the machine may halt (at ⊳).
            }
            CState::Back { p, q } => {
                let (p, q) = (*p, *q);
                // Halt at ⊳ (accepting): no action on the left marker.
                builder.set_final(id, true);
                for a in 0..sigma {
                    let sym = Symbol::from_index(a);
                    // Output at this position.
                    let q_here = m2.next(q, sym).expect("total");
                    outputs.push((id, sym, bim.output_of(p, q_here, sym)));
                    // Predecessors of p under sym.
                    let pre: Vec<StateId> = (0..m1.num_states())
                        .map(StateId::from_index)
                        .filter(|&p0| m1.next(p0, sym) == Some(p))
                        .collect();
                    match pre.len() {
                        0 => { /* unreachable on real inputs: halt (non-final would
                             be wrong — this state IS final; leave no action,
                             which can only trigger on inconsistent inputs) */
                        }
                        1 => {
                            let nxt = intern(
                                &mut builder,
                                &mut index,
                                &mut pending,
                                CState::Back {
                                    p: pre[0],
                                    q: q_here,
                                },
                            );
                            builder.set_action(id, Tape::Sym(sym), Dir::Left, nxt);
                        }
                        _ => {
                            // Ambiguous: start the γ-set dive. Buckets at the
                            // position one left are seeded by the identity on
                            // candidates *at that position* — i.e. the map
                            // "state at pos i-1 ↦ candidate" starts as
                            // `p' ↦ p'` restricted to `pre`.
                            let mut buckets = vec![None; m1.num_states()];
                            for &c in &pre {
                                buckets[c.index()] = Some(c);
                            }
                            let nxt = intern(
                                &mut builder,
                                &mut index,
                                &mut pending,
                                CState::Gamma {
                                    buckets,
                                    pair: (pre[0], pre[1]),
                                    pair_here: true,
                                    q: q_here,
                                },
                            );
                            builder.set_action(id, Tape::Sym(sym), Dir::Left, nxt);
                        }
                    }
                }
            }
            CState::Gamma {
                buckets,
                pair,
                pair_here,
                q,
            } => {
                let (pair, pair_here, q) = (*pair, *pair_here, *q);
                // Count live buckets.
                let mut live: Vec<StateId> = buckets.iter().flatten().copied().collect();
                live.sort_unstable();
                live.dedup();

                // Start the merge walk toward candidate `p_true`. If the
                // witness pair denotes states at this very cell, skip the
                // no-op hop; if it denotes states one cell right, take it.
                let start_walk = |builder: &mut TwoDfaBuilder,
                                  index: &mut HashMap<CState, StateId>,
                                  pending: &mut Vec<CState>,
                                  p_true: StateId| {
                    let st = if pair_here {
                        CState::Walk {
                            x: pair.0,
                            y: pair.1,
                            p_true,
                            q,
                        }
                    } else {
                        CState::WalkFresh {
                            x: pair.0,
                            y: pair.1,
                            p_true,
                            q,
                        }
                    };
                    intern(builder, index, pending, st)
                };

                if live.len() <= 1 {
                    // Disambiguated mid-string: walk right to the merge cell.
                    if let Some(&p_true) = live.first() {
                        let walk = start_walk(&mut builder, &mut index, &mut pending, p_true);
                        for a in 0..sigma {
                            builder.set_action(
                                id,
                                Tape::Sym(Symbol::from_index(a)),
                                Dir::Right,
                                walk,
                            );
                        }
                        builder.set_action(id, Tape::LeftMarker, Dir::Right, walk);
                    }
                    // live empty: stuck (cannot happen on consistent inputs).
                } else {
                    // At ⊳ the true bucket is the initial state's bucket.
                    if let Some(p_true) = buckets[m1.initial().index()] {
                        let walk = start_walk(&mut builder, &mut index, &mut pending, p_true);
                        builder.set_action(id, Tape::LeftMarker, Dir::Right, walk);
                    }
                    // On a real symbol: refine buckets one step left and
                    // remember a fresh witness pair from this cell.
                    for a in 0..sigma {
                        let sym = Symbol::from_index(a);
                        let mut refined = vec![None; m1.num_states()];
                        for (p0, slot) in refined.iter_mut().enumerate() {
                            let succ = m1.next(StateId::from_index(p0), sym).expect("total");
                            *slot = buckets[succ.index()];
                        }
                        // Two witnesses from different buckets at the current
                        // cell (exists because live.len() >= 2).
                        let w0 = buckets
                            .iter()
                            .position(|b| *b == Some(live[0]))
                            .expect("live bucket has a member");
                        let w1 = buckets
                            .iter()
                            .position(|b| *b == Some(live[1]))
                            .expect("live bucket has a member");
                        let nxt = intern(
                            &mut builder,
                            &mut index,
                            &mut pending,
                            CState::Gamma {
                                buckets: refined,
                                pair: (StateId::from_index(w0), StateId::from_index(w1)),
                                pair_here: false,
                                q,
                            },
                        );
                        builder.set_action(id, Tape::Sym(sym), Dir::Left, nxt);
                    }
                }
            }
            CState::WalkFresh { x, y, p_true, q } => {
                // No-op hop: witnesses already denote states at this cell.
                let nxt = intern(
                    &mut builder,
                    &mut index,
                    &mut pending,
                    CState::Walk {
                        x: *x,
                        y: *y,
                        p_true: *p_true,
                        q: *q,
                    },
                );
                for a in 0..sigma {
                    builder.set_action(id, Tape::Sym(Symbol::from_index(a)), Dir::Right, nxt);
                }
            }
            CState::Walk { x, y, p_true, q } => {
                for a in 0..sigma {
                    let sym = Symbol::from_index(a);
                    let x2 = m1.next(*x, sym).expect("total");
                    let y2 = m1.next(*y, sym).expect("total");
                    if x2 == y2 {
                        // Merge point: this is the cell whose predecessor we
                        // resolved; resume the backward sweep one step left.
                        let back = intern(
                            &mut builder,
                            &mut index,
                            &mut pending,
                            CState::Back { p: *p_true, q: *q },
                        );
                        builder.set_action(id, Tape::Sym(sym), Dir::Left, back);
                    } else {
                        let nxt = intern(
                            &mut builder,
                            &mut index,
                            &mut pending,
                            CState::Walk {
                                x: x2,
                                y: y2,
                                p_true: *p_true,
                                q: *q,
                            },
                        );
                        builder.set_action(id, Tape::Sym(sym), Dir::Right, nxt);
                    }
                }
            }
        }
    }

    let machine = builder.build()?;
    obs.record(Series::MachineStates, machine.num_states() as u64);
    let mut gsqa = Gsqa::new(machine, bim.gamma_len);
    for (state, sym, g) in outputs {
        gsqa.set_output(state, sym, g);
    }
    Ok(gsqa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// M₁: parity of `b`s so far; M₂ (right-to-left): whether a `b` occurs
    /// to the right (inclusive).
    fn sample_bimachine() -> Bimachine {
        let mut left = Dfa::new(2);
        let e = left.add_state();
        let o = left.add_state();
        left.set_initial(e);
        left.set_transition(e, sym(0), e);
        left.set_transition(o, sym(0), o);
        left.set_transition(e, sym(1), o);
        left.set_transition(o, sym(1), e);

        let mut right = Dfa::new(2);
        let no = right.add_state();
        let yes = right.add_state();
        right.set_initial(no);
        right.set_transition(no, sym(0), no);
        right.set_transition(no, sym(1), yes);
        right.set_transition(yes, sym(0), yes);
        right.set_transition(yes, sym(1), yes);

        // Γ = {0..8}: encode (p, q, σ) densely for full observability.
        Bimachine::new(left, right, 8, |p, q, s| {
            (p.index() * 4 + q.index() * 2 + s.index()) as u32
        })
        .unwrap()
    }

    #[test]
    fn bimachine_two_pass_run() {
        let bim = sample_bimachine();
        // word: a b a  → p = e,o,o (0,1,1); q right-to-left: at pos2 (a): no
        // b to the right incl → 0; pos1 (b): yes → 1; pos0 (a): yes → 1.
        let w = vec![sym(0), sym(1), sym(0)];
        let out = bim.run(&w);
        let expect = [2, 4 + 2 + 1, 4];
        assert_eq!(out, expect.to_vec());
    }

    #[test]
    fn composed_machine_agrees_exhaustively() {
        let bim = sample_bimachine();
        let gsqa = compose(&bim).unwrap();
        for len in 0..=7usize {
            for mask in 0..(1usize << len) {
                let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                assert_eq!(
                    gsqa.run(&w).unwrap(),
                    bim.run(&w),
                    "word mask {mask:#b} len {len}"
                );
            }
        }
    }

    /// A bimachine whose left DFA has a 3-way merge (tests the γ dive).
    fn merging_bimachine() -> Bimachine {
        // M₁ over {a, b, c}: states 0,1,2; on `a` everything merges to 0;
        // on `b` rotate; on `c` stay.
        let mut left = Dfa::new(3);
        let s0 = left.add_state();
        let s1 = left.add_state();
        let s2 = left.add_state();
        left.set_initial(s0);
        for (i, s) in [s0, s1, s2].into_iter().enumerate() {
            left.set_transition(s, sym(0), s0); // a: merge
            let rot = [s1, s2, s0][i];
            left.set_transition(s, sym(1), rot); // b: rotate
            left.set_transition(s, sym(2), s); // c: identity
        }
        let mut right = Dfa::new(3);
        let r0 = right.add_state();
        let r1 = right.add_state();
        right.set_initial(r0);
        for s in [r0, r1] {
            right.set_transition(s, sym(0), r1);
            right.set_transition(s, sym(1), r0);
            right.set_transition(s, sym(2), s);
        }
        Bimachine::new(left, right, 3 * 2 * 3, |p, q, s| {
            (p.index() * 6 + q.index() * 3 + s.index()) as u32
        })
        .unwrap()
    }

    #[test]
    fn composed_machine_handles_ambiguous_preimages() {
        let bim = merging_bimachine();
        let gsqa = compose(&bim).unwrap();
        for len in 0..=5usize {
            let mut words = vec![Vec::new()];
            for _ in 0..len {
                let mut next = Vec::new();
                for w in &words {
                    for a in 0..3 {
                        let mut w2 = w.clone();
                        w2.push(sym(a));
                        next.push(w2);
                    }
                }
                words = next;
            }
            for w in words {
                if w.len() != len {
                    continue;
                }
                assert_eq!(gsqa.run(&w).unwrap(), bim.run(&w), "{w:?}");
            }
        }
    }

    #[test]
    fn rejects_partial_components() {
        let mut left = Dfa::new(1);
        let q = left.add_state();
        left.set_initial(q);
        // no transitions: partial
        let mut right = Dfa::new(1);
        let r = right.add_state();
        right.set_initial(r);
        right.set_transition(r, sym(0), r);
        assert!(Bimachine::new(left, right, 1, |_, _, _| 0).is_err());
    }
}
