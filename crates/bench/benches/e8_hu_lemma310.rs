//! E8 (Lemma 3.10): the Hopcroft–Ullman composition — two-pass bimachine
//! evaluation (O(n) time, O(n) space) vs the composed two-way machine
//! (O(1) space, more head movement). Both are linear; the bench exposes
//! the constant-factor cost of the zig-zag recovery.

use qa_base::Symbol;
use qa_bench::Harness;
use qa_strings::Dfa;
use qa_twoway::{hopcroft_ullman, Bimachine};

fn sym(i: usize) -> Symbol {
    Symbol::from_index(i)
}

/// Bimachine with a 3-state left DFA featuring merges (exercises γ dives).
fn sample() -> Bimachine {
    let mut left = Dfa::new(2);
    let s0 = left.add_state();
    let s1 = left.add_state();
    let s2 = left.add_state();
    left.set_initial(s0);
    for (i, s) in [s0, s1, s2].into_iter().enumerate() {
        left.set_transition(s, sym(0), s0); // merge on 0
        let rot = [s1, s2, s0][i];
        left.set_transition(s, sym(1), rot); // rotate on 1
    }
    let mut right = Dfa::new(2);
    let r0 = right.add_state();
    let r1 = right.add_state();
    right.set_initial(r0);
    for s in [r0, r1] {
        right.set_transition(s, sym(0), r1);
        right.set_transition(s, sym(1), r0);
    }
    Bimachine::new(left, right, 12, |p, q, s| {
        (p.index() * 4 + q.index() * 2 + s.index()) as u32
    })
    .unwrap()
}

fn main() {
    let mut h = Harness::new("e8_hu_lemma310");
    let bim = sample();
    h.bench("compose_construction", || {
        hopcroft_ullman::compose(&bim)
            .unwrap()
            .machine()
            .num_states()
    });
    let gsqa = hopcroft_ullman::compose(&bim).unwrap();
    for n in [32usize, 256, 2048] {
        let w = qa_bench::random_word(n, 31 + n as u64);
        h.bench(&format!("bimachine_two_pass/{n}"), || bim.run(&w).len());
        h.bench(&format!("composed_two_way/{n}"), || {
            gsqa.run(&w).unwrap().len()
        });
    }
}
