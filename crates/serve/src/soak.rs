//! The deterministic soak harness behind `qa-serve --soak`.
//!
//! A soak starts an in-process [`ServeDaemon`], ingests a seeded corpus
//! of synthetic documents over `PUT /doc`, then fires `clients ×
//! requests` concurrent `POST /query` calls at it. The request *content*
//! is a pure function of `(seed, client, request)`, and before the burst
//! starts the harness computes every expected node set locally through
//! the same compile pipeline — so although thread interleaving varies,
//! every `200` response is checked byte-for-byte against the
//! deterministic answer, and any drift is a `mismatch`, not a flake.
//!
//! What the soak gates:
//!
//! - **correctness** — zero mismatches between served node sets and the
//!   local batch evaluation;
//! - **shed behavior** — with a tiny queue depth, admission control must
//!   answer `429` with `Retry-After` (never hang, never panic), and with
//!   a sane depth it must not shed at all;
//! - **latency** — client-observed p99 stays under an explicit gate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qa_base::rng::StdRng;
use qa_obs::json::{self, Value};
use qa_pulse::{http_request, HttpTimeouts};
use qa_trees::sexpr::to_sexpr;

use crate::daemon::{ServeConfig, ServeDaemon};

/// The query mix every soak cycles through.
pub const SOAK_FORMULAS: [&str; 4] = [
    "label(v, a)",
    "label(v, b)",
    "leaf(v) & label(v, c)",
    "label(v, a) & (ex r. (root(r) & label(r, a)))",
];

/// Configuration of one soak run.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Daemon configuration (listen address, workers, queue depth, …).
    pub daemon: ServeConfig,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client fires.
    pub requests: usize,
    /// Seed for the document corpus and the request schedule.
    pub seed: u64,
    /// Distinct synthetic documents to ingest.
    pub docs: usize,
    /// Nodes per synthetic document.
    pub doc_nodes: usize,
    /// Fail unless at least one request was shed with `429` (for tiny
    /// queue depths that exist to prove admission control sheds).
    pub expect_shed: bool,
    /// Fail if any request was shed (for generous queue depths).
    pub forbid_shed: bool,
    /// Fail if client-observed p99 exceeds this many milliseconds.
    pub gate_p99_ms: Option<u64>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            daemon: ServeConfig::default(),
            clients: 8,
            requests: 64,
            seed: 42,
            docs: 6,
            doc_nodes: 200,
            expect_shed: false,
            forbid_shed: false,
            gate_p99_ms: None,
        }
    }
}

/// Outcome of one soak run.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Requests offered (`clients × requests`).
    pub offered: usize,
    /// `200` responses.
    pub ok: usize,
    /// `429` sheds.
    pub shed: usize,
    /// Any other status, transport error, or missing `Retry-After` on a
    /// shed.
    pub failed: usize,
    /// `200` responses whose node set differed from the local batch
    /// evaluation.
    pub mismatches: usize,
    /// Client-observed latency percentiles over `200` responses, in
    /// microseconds.
    pub p50_us: u64,
    /// 99th percentile latency (microseconds).
    pub p99_us: u64,
    /// Worst observed latency (microseconds).
    pub max_us: u64,
    /// Wall time of the whole burst, in milliseconds.
    pub wall_ms: u64,
}

impl SoakReport {
    /// Offered load in requests per second over the burst.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ms == 0 {
            return self.offered as f64 * 1_000.0;
        }
        self.offered as f64 * 1_000.0 / self.wall_ms as f64
    }

    /// Shed fraction of offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// The E17-style summary table.
    pub fn table(&self) -> String {
        format!(
            "offered   ok     429    fail   mism   rps      p50us    p99us    maxus\n\
             {:<9} {:<6} {:<6} {:<6} {:<6} {:<8.0} {:<8} {:<8} {:<8}\n",
            self.offered,
            self.ok,
            self.shed,
            self.failed,
            self.mismatches,
            self.throughput_rps(),
            self.p50_us,
            self.p99_us,
            self.max_us
        )
    }

    /// Every gate the run violated, as human-readable reasons (empty =
    /// pass).
    pub fn gate_failures(&self, cfg: &SoakConfig) -> Vec<String> {
        let mut fails = Vec::new();
        if self.failed > 0 {
            fails.push(format!(
                "{} request(s) failed outside the 200/429 contract",
                self.failed
            ));
        }
        if self.mismatches > 0 {
            fails.push(format!(
                "{} response(s) diverged from the batch evaluation",
                self.mismatches
            ));
        }
        if cfg.expect_shed && self.shed == 0 {
            fails.push("expected at least one 429 shed, saw none".to_string());
        }
        if cfg.forbid_shed && self.shed > 0 {
            fails.push(format!("expected zero sheds, saw {}", self.shed));
        }
        if let Some(gate) = cfg.gate_p99_ms {
            let p99_ms = self.p99_us / 1_000;
            if p99_ms > gate {
                fails.push(format!("p99 {}ms over the {}ms gate", p99_ms, gate));
            }
        }
        fails
    }
}

/// The seeded document corpus: `(name, s-expression)` pairs over the
/// labels `a`/`b`/`c`, shapes drawn by [`qa_trees::generate::random`].
pub fn soak_corpus(seed: u64, docs: usize, doc_nodes: usize) -> Vec<(String, String)> {
    let alphabet = qa_base::Alphabet::from_names(["a", "b", "c"]);
    let labels: Vec<_> = alphabet.symbols().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..docs)
        .map(|i| {
            let tree = qa_trees::generate::random(&mut rng, &labels, doc_nodes.max(1), Some(4));
            (format!("doc-{i}"), to_sexpr(&tree, &alphabet))
        })
        .collect()
}

/// Which `(formula, doc)` pair request `r` of client `c` targets — a pure
/// function so the burst is reproducible and locally checkable.
fn pick(seed: u64, client: usize, request: usize, docs: usize) -> (usize, usize) {
    let h = qa_obs::fnv1a64(format!("{seed}/{client}/{request}").as_bytes());
    (
        (h % SOAK_FORMULAS.len() as u64) as usize,
        ((h >> 16) % docs.max(1) as u64) as usize,
    )
}

/// Run one soak against a fresh in-process daemon; see the module docs.
pub fn run_soak(cfg: &SoakConfig) -> std::io::Result<SoakReport> {
    let daemon = ServeDaemon::start(cfg.daemon.clone())?;
    let addr = daemon.addr();
    let timeouts = HttpTimeouts {
        connect: Duration::from_secs(5),
        io: Duration::from_secs(30),
    };
    let corpus = soak_corpus(cfg.seed, cfg.docs, cfg.doc_nodes);

    // Ingest over the wire (PUT /doc is part of what the soak exercises).
    for (name, text) in &corpus {
        let resp = http_request(
            addr,
            "PUT",
            &format!("/doc?name={name}"),
            "text/plain",
            text,
            timeouts,
        )?;
        if resp.status != 200 {
            return Err(std::io::Error::other(format!(
                "ingest of {name} failed with {}: {}",
                resp.status, resp.body
            )));
        }
    }

    // Expected node sets through the same pipeline, computed locally.
    let expected = {
        let mut store = crate::DocStore::new();
        for (name, text) in &corpus {
            store
                .ingest(name, text)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        let mut cache = crate::QueryCache::new(SOAK_FORMULAS.len() + 1);
        let mut table: Vec<Vec<Vec<u64>>> = Vec::new();
        for formula in SOAK_FORMULAS {
            let compiled = cache
                .compile(formula, store.alphabet_mut(), None)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            let per_doc = corpus
                .iter()
                .map(|(name, _)| {
                    let doc = store.get(name).expect("just ingested");
                    compiled
                        .prepared
                        .eval_unranked(&doc.tree)
                        .into_iter()
                        .map(|v| v.index() as u64)
                        .collect()
                })
                .collect();
            table.push(per_doc);
        }
        Arc::new(table)
    };

    let ok = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    let mismatches = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let ok = Arc::clone(&ok);
            let shed = Arc::clone(&shed);
            let failed = Arc::clone(&failed);
            let mismatches = Arc::clone(&mismatches);
            let latencies = Arc::clone(&latencies);
            let expected = Arc::clone(&expected);
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(cfg.requests);
                for request in 0..cfg.requests {
                    let (qi, di) = pick(cfg.seed, client, request, cfg.docs);
                    let why = request % 5 == 0;
                    let body = json::object(|w| {
                        w.field_str("formula", SOAK_FORMULAS[qi]);
                        w.field_str("doc", &format!("doc-{di}"));
                        w.field_bool("why", why);
                    });
                    let sent = Instant::now();
                    let resp =
                        http_request(addr, "POST", "/query", "application/json", &body, timeouts);
                    let micros = sent.elapsed().as_micros() as u64;
                    match resp {
                        Ok(r) if r.status == 200 => {
                            mine.push(micros);
                            let served: Option<Vec<u64>> =
                                json::parse(&r.body).ok().and_then(|v| selected_of(&v));
                            if served.as_deref() == Some(&expected[qi][di]) {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // A shed without Retry-After breaks the contract.
                        Ok(r) if r.status == 429 && r.retry_after.is_some() => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().expect("latency lock").extend(mine);
            });
        }
    });
    let wall_ms = started.elapsed().as_millis() as u64;
    daemon.shutdown();

    let mut lat = Arc::try_unwrap(latencies)
        .expect("clients joined")
        .into_inner()
        .expect("latency lock");
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    Ok(SoakReport {
        offered: cfg.clients * cfg.requests,
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: lat.last().copied().unwrap_or(0),
        wall_ms,
    })
}

/// The `selected` array of a `POST /query` response body.
fn selected_of(value: &Value) -> Option<Vec<u64>> {
    value
        .get("selected")?
        .as_arr()
        .map(|items| items.iter().filter_map(Value::as_u64).collect())
}
