//! [`TraceContext`]: deterministic trace/span identity for wide events.
//!
//! Distributed tracing conventionally mints trace ids from ambient entropy;
//! this workspace's telemetry discipline is the opposite — every exported
//! artifact must be byte-identical across reruns, worker counts and mesh
//! shard counts. Ids are therefore *derived*, not drawn: a job's trace id
//! is a hash of the fleet run id and the job's global index, and its span
//! id a further derivation, so any process that knows `(run_id, job)` mints
//! the same ids without coordination. The mesh coordinator "mints" trace
//! ids simply by forwarding `--run-id` to its workers.

/// FNV-1a 64-bit hash — the workspace's deterministic id hash.
///
/// Chosen for being trivially portable (no dependency, no platform
/// variance) and stable forever: these hashes land in exported artifacts
/// that are diffed across machines and CI runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Trace/span identity of one job inside a fleet run.
///
/// `trace_id` identifies the (query, doc) job across every process that
/// touches it; `span_id` identifies this particular evaluation span.
/// Both render as fixed-width lowercase hex ([`TraceContext::trace_hex`]),
/// the form stamped into `events.jsonl` and Chrome trace args.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id: identifies the job fleet-wide.
    pub trace_id: u64,
    /// Span id: identifies one evaluation span within the trace.
    pub span_id: u64,
}

impl TraceContext {
    /// Mint the context for global job `job` of fleet run `run_id`.
    ///
    /// Deterministic: every process given the same `(run_id, job)` mints
    /// the same ids, which is what lets a mesh worker stamp spans the
    /// coordinator can assemble without ever exchanging ids.
    pub fn mint(run_id: &str, job: usize) -> TraceContext {
        let mut key = Vec::with_capacity(run_id.len() + 24);
        key.extend_from_slice(run_id.as_bytes());
        key.extend_from_slice(b"/job/");
        key.extend_from_slice(job.to_string().as_bytes());
        let trace_id = fnv1a64(&key);
        key.extend_from_slice(b"/span");
        let span_id = fnv1a64(&key);
        TraceContext { trace_id, span_id }
    }

    /// The trace id as 16 lowercase hex digits.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// The span id as 16 lowercase hex digits.
    pub fn span_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn minting_is_deterministic_and_job_sensitive() {
        let a = TraceContext::mint("fleet-s7-q4x4-z48", 3);
        let b = TraceContext::mint("fleet-s7-q4x4-z48", 3);
        assert_eq!(a, b, "same (run, job) must mint the same ids");
        let c = TraceContext::mint("fleet-s7-q4x4-z48", 4);
        assert_ne!(a.trace_id, c.trace_id, "jobs get distinct traces");
        let d = TraceContext::mint("fleet-s8-q4x4-z48", 3);
        assert_ne!(a.trace_id, d.trace_id, "runs get distinct traces");
        assert_ne!(a.trace_id, a.span_id, "span id is a further derivation");
    }

    #[test]
    fn hex_renders_fixed_width() {
        let ctx = TraceContext {
            trace_id: 0xab,
            span_id: 1,
        };
        assert_eq!(ctx.trace_hex(), "00000000000000ab");
        assert_eq!(ctx.span_hex(), "0000000000000001");
    }
}
