//! [`WorkPool`]: a *resident* work-stealing executor for serving daemons.
//!
//! [`par_batch_with`](crate::par_batch_with) is scoped: it spawns workers,
//! drains one batch, and joins — the right shape for `qa-fleet`, the wrong
//! one for a daemon that must answer requests for hours. `WorkPool` keeps
//! the same work-stealing discipline (per-worker deques, owner pops the
//! front, thieves steal the back) but makes the workers resident: jobs are
//! boxed closures submitted from any thread, and the pool drains them until
//! it is dropped.
//!
//! The pool deliberately exposes its backlog: [`WorkPool::queue_depth`] is
//! the number of submitted-but-not-yet-started jobs, which is exactly the
//! signal a serving daemon's admission control needs — when the backlog
//! exceeds the configured depth, shed the request with `429 Retry-After`
//! instead of queueing unbounded work behind a latency SLO.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of pool work: a boxed closure, run exactly once on some worker.
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// One deque per worker; submissions round-robin across them, the
    /// owning worker pops the front, idle workers steal the back.
    queues: Vec<Mutex<VecDeque<PoolJob>>>,
    /// Jobs submitted but not yet picked up by any worker.
    depth: AtomicUsize,
    /// Round-robin cursor for submissions.
    next: AtomicUsize,
    /// Cleared when the pool is dropped; workers drain and exit.
    open: AtomicBool,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
}

/// A resident work-stealing thread pool; see the module docs.
///
/// Dropping the pool closes the intake, drains every already-submitted
/// job, and joins the workers.
pub struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkPool {
    /// Spawn a pool with `workers` resident threads (clamped to at least
    /// one), named `qa-pool-0`, `qa-pool-1`, ….
    pub fn new(workers: usize) -> WorkPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qa-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkPool {
            shared,
            workers: handles,
        }
    }

    /// Number of resident workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet started — the admission-control signal.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// Queue `job` on the next deque in round-robin order. Returns `false`
    /// (dropping the job) if the pool is already closing.
    pub fn submit(&self, job: PoolJob) -> bool {
        if !self.shared.open.load(Ordering::Acquire) {
            return false;
        }
        let i = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.depth.fetch_add(1, Ordering::AcqRel);
        self.shared.queues[i]
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        self.wake_one();
        true
    }

    fn wake_one(&self) {
        let _guard = self.shared.idle.lock().expect("pool idle lock poisoned");
        self.shared.wake.notify_one();
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.open.store(false, Ordering::Release);
        {
            let _guard = self.shared.idle.lock().expect("pool idle lock poisoned");
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        // Own front first, then steal from the back of the others.
        let job = take_job(shared, me);
        match job {
            Some(job) => {
                shared.depth.fetch_sub(1, Ordering::AcqRel);
                job();
            }
            None => {
                if !shared.open.load(Ordering::Acquire) {
                    // Closing: exit only once every queue is drained.
                    if shared.depth.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    continue;
                }
                let guard = shared.idle.lock().expect("pool idle lock poisoned");
                // Re-check under the lock so a submit between our scan and
                // the park cannot strand its wake-up.
                if shared.depth.load(Ordering::Acquire) == 0 && shared.open.load(Ordering::Acquire)
                {
                    let _ = shared
                        .wake
                        .wait_timeout(guard, Duration::from_millis(50))
                        .expect("pool idle lock poisoned");
                }
            }
        }
    }
}

fn take_job(shared: &PoolShared, me: usize) -> Option<PoolJob> {
    let n = shared.queues.len();
    if let Some(job) = shared.queues[me]
        .lock()
        .expect("pool queue poisoned")
        .pop_front()
    {
        return Some(job);
    }
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(job) = shared.queues[victim]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn every_submitted_job_runs_exactly_once() {
        let pool = WorkPool::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })));
        }
        drop(pool); // drains before joining
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn results_come_back_over_channels() {
        let pool = WorkPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0u64..64 {
            let tx = tx.clone();
            assert!(pool.submit(Box::new(move || tx.send(i * i).unwrap())));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn queue_depth_drains_to_zero() {
        let pool = WorkPool::new(2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        for _ in 0..8 {
            let gate_rx = Arc::clone(&gate_rx);
            pool.submit(Box::new(move || {
                let _ = gate_rx.lock().unwrap().recv();
            }));
        }
        // Two workers hold two jobs; the rest sit queued.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.queue_depth() > 6 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(pool.queue_depth() >= 1, "backlog must be visible");
        for _ in 0..8 {
            gate_tx.send(()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.queue_depth() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn stealing_spreads_one_hot_queue() {
        // One submitter, several workers: round-robin submission plus
        // stealing keeps every worker busy; all jobs complete.
        let pool = WorkPool::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_micros(50));
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }
}
