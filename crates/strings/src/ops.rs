//! Conversions between automaton representations.

use std::collections::{HashMap, VecDeque};

use qa_base::Symbol;

use crate::{Dfa, Nfa, StateId};

/// Subset-construction determinization (only reachable subsets are built).
///
/// The resulting DFA is total over the alphabet: the empty subset acts as the
/// dead state when reachable.
pub fn determinize(nfa: &Nfa) -> Dfa {
    let mut dfa = Dfa::new(nfa.alphabet_len());
    let start: Vec<StateId> = nfa.epsilon_closure(nfa.initial_states());
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut queue: VecDeque<Vec<StateId>> = VecDeque::new();
    let init = dfa.add_state();
    dfa.set_initial(init);
    if start.iter().any(|&s| nfa.is_accepting(s)) {
        dfa.set_accepting(init, true);
    }
    index.insert(start.clone(), init);
    queue.push_back(start);
    while let Some(set) = queue.pop_front() {
        let from = index[&set];
        for sym_idx in 0..nfa.alphabet_len() {
            let sym = Symbol::from_index(sym_idx);
            let next = nfa.step(&set, sym);
            let to = match index.get(&next) {
                Some(&id) => id,
                None => {
                    let id = dfa.add_state();
                    if next.iter().any(|&s| nfa.is_accepting(s)) {
                        dfa.set_accepting(id, true);
                    }
                    index.insert(next.clone(), id);
                    queue.push_back(next);
                    id
                }
            };
            dfa.set_transition(from, sym, to);
        }
    }
    dfa
}

/// Complement of an NFA language, via determinization.
pub fn complement(nfa: &Nfa) -> Dfa {
    determinize(nfa).complement()
}

/// Whether two NFAs accept the same language.
pub fn nfa_equivalent(a: &Nfa, b: &Nfa) -> bool {
    determinize(a)
        .minimize()
        .equivalent(&determinize(b).minimize())
}

/// Whether `L(a) ⊆ L(b)` for NFAs.
pub fn nfa_subset(a: &Nfa, b: &Nfa) -> bool {
    // a ⊆ b  iff  a ∩ ¬b = ∅; keep `a` nondeterministic and only
    // determinize `b`.
    let not_b = complement(b).to_nfa();
    a.intersect(&not_b).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// NFA for "(a|b)* a (a|b)": second-to-last symbol is `a` — the classic
    /// exponential-determinization family member (n = 2).
    fn second_to_last_a() -> Nfa {
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.set_initial(q0);
        n.set_accepting(q2, true);
        for s in [sym(0), sym(1)] {
            n.add_transition(q0, s, q0);
            n.add_transition(q1, s, q2);
        }
        n.add_transition(q0, sym(0), q1);
        n
    }

    #[test]
    fn determinize_preserves_language() {
        let n = second_to_last_a();
        let d = determinize(&n);
        let mut sigma = Alphabet::new();
        sigma.intern("a");
        sigma.intern("b");
        // exhaustive check on all words of length <= 5
        for len in 0..=5usize {
            for mask in 0..(1usize << len) {
                let w: Vec<Symbol> = (0..len).map(|i| sym((mask >> i) & 1)).collect();
                assert_eq!(n.accepts(&w), d.accepts(&w), "word {:?}", sigma.render(&w));
            }
        }
        assert!(d.is_total());
    }

    #[test]
    fn complement_of_nfa() {
        let n = second_to_last_a();
        let c = complement(&n);
        assert!(c.accepts(&[]));
        assert!(c.accepts(&[sym(0)]));
        assert!(!c.accepts(&[sym(0), sym(1)]));
    }

    #[test]
    fn equivalence_and_subset() {
        let n = second_to_last_a();
        let d = determinize(&n).to_nfa();
        assert!(nfa_equivalent(&n, &d));
        assert!(nfa_subset(&n, &Nfa::universal(2)));
        assert!(!nfa_subset(&Nfa::universal(2), &n));
    }

    #[test]
    fn determinize_empty_nfa_yields_empty_language() {
        let n = Nfa::new(2);
        let d = determinize(&n);
        assert!(d.is_empty());
        assert!(!d.accepts(&[]));
    }
}
