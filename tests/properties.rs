//! Property-based tests (proptest) for the workspace invariants listed in
//! DESIGN.md §6.

use std::sync::OnceLock;

use proptest::prelude::*;
use query_automata::mso::{compile_string, naive, query_eval, unranked};
use query_automata::prelude::*;
use query_automata::strings::{ops, Regex};
use query_automata::twoway::{behavior::BehaviorAnalysis, crossing, shepherdson};

fn sym(i: usize) -> Symbol {
    Symbol::from_index(i)
}

/// Random regex AST over a 2-symbol alphabet.
fn arb_regex(depth: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Sym(sym(0))),
        Just(Regex::Sym(sym(1))),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Alt(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Regex::Star(Box::new(a))),
        ]
    })
}

fn arb_word(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0usize..2, 0..=max_len)
        .prop_map(|v| v.into_iter().map(sym).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// regex → NFA → DFA → minimized DFA all agree on membership.
    #[test]
    fn regex_pipeline_agrees(r in arb_regex(3), w in arb_word(8)) {
        let nfa = r.to_nfa(2);
        let dfa = nfa.determinize();
        let min = dfa.minimize();
        let via_nfa = nfa.accepts(&w);
        prop_assert_eq!(via_nfa, dfa.accepts(&w));
        prop_assert_eq!(via_nfa, min.accepts(&w));
        prop_assert!(min.num_states() <= dfa.num_states());
    }

    /// complement really complements; intersection with the complement is
    /// empty.
    #[test]
    fn complement_laws(r in arb_regex(3), w in arb_word(6)) {
        let nfa = r.to_nfa(2);
        let comp = ops::complement(&nfa);
        prop_assert_eq!(nfa.accepts(&w), !comp.accepts(&w));
        prop_assert!(nfa.intersect(&comp.to_nfa()).is_empty());
    }

    /// Example 3.4 QA: direct run, behavior-function evaluation, the
    /// Shepherdson DFA and the crossing-sequence NFAs all agree.
    #[test]
    fn string_qa_strategies_agree(w in arb_word(10)) {
        static QA: OnceLock<StringQa> = OnceLock::new();
        let qa = QA.get_or_init(|| {
            query_automata::twoway::string_qa::example_3_4_qa(
                &Alphabet::from_names(["0", "1"]),
            )
        });
        let via_run = qa.query(&w).unwrap();
        let via_beh = qa.query_via_behavior(&w);
        prop_assert_eq!(&via_run, &via_beh);

        // acceptance: 2DFA vs Shepherdson vs crossing NFA
        static ACC: OnceLock<(query_automata::strings::Dfa, query_automata::strings::Nfa)> =
            OnceLock::new();
        let (shep, cross) = ACC.get_or_init(|| {
            (
                shepherdson::to_dfa(qa.machine()),
                crossing::acceptance_nfa(qa.machine()),
            )
        });
        let accepts = qa.machine().accepts(&w).unwrap();
        prop_assert_eq!(accepts, shep.accepts(&w));
        prop_assert_eq!(accepts, cross.accepts(&w));

        // selection NFA agrees position by position
        static SEL: OnceLock<query_automata::strings::Nfa> = OnceLock::new();
        let sel = SEL.get_or_init(|| crossing::selection_nfa(qa));
        for pos in 0..w.len() {
            let marked = crossing::mark(&w, pos, 2);
            prop_assert_eq!(via_run.contains(&pos), sel.accepts(&marked));
        }
    }

    /// Behavior analysis reproduces the literal run on random words.
    #[test]
    fn behavior_analysis_matches_run(w in arb_word(12)) {
        static QA: OnceLock<StringQa> = OnceLock::new();
        let qa = QA.get_or_init(|| {
            query_automata::twoway::string_qa::example_3_4_qa(
                &Alphabet::from_names(["0", "1"]),
            )
        });
        let m = qa.machine();
        let rec = m.run(&w).unwrap();
        let ba = BehaviorAnalysis::analyze(m, &w);
        prop_assert_eq!(ba.accepted(m), rec.accepted);
        for (i, states) in rec.assumed.iter().enumerate() {
            let mut got = ba.assumed[i].clone();
            let mut want = states.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Compiled MSO sentences agree with the naive semantics on strings.
    #[test]
    fn mso_string_sentences_agree(w in arb_word(7), which in 0usize..4) {
        static CORPUS: OnceLock<Vec<(Formula, query_automata::strings::Dfa)>> = OnceLock::new();
        let corpus = CORPUS.get_or_init(|| {
            let mut a = Alphabet::from_names(["0", "1"]);
            [
                "ex x. label(x, 1)",
                "all x. all y. (edge(x, y) -> !(label(x, 1) & label(y, 1)))",
                "ex x. ex y. (x < y & label(x, 1) & label(y, 0))",
                "ex2 X. ((all x. (root(x) -> x in X)) \
                 & (all x. all y. (edge(x, y) -> (y in X <-> !(x in X)))) \
                 & (all x. (leaf(x) -> !(x in X))))",
            ]
            .iter()
            .map(|src| {
                let f = parse_mso(src, &mut a).unwrap();
                let d = compile_string::compile_sentence(&f, 2).unwrap();
                (f, d)
            })
            .collect()
        });
        let (f, d) = &corpus[which];
        let naive_verdict = naive::check(naive::Structure::Word(&w), f).unwrap();
        prop_assert_eq!(d.accepts(&w), naive_verdict);
    }
}

/// Random unranked trees over a 2-symbol alphabet.
fn arb_tree(max_nodes: usize) -> impl Strategy<Value = Tree> {
    (1..=max_nodes, any::<u64>()).prop_map(move |(n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        qa_trees_generate(&mut rng, n)
    })
}

fn qa_trees_generate(rng: &mut impl rand::Rng, n: usize) -> Tree {
    query_automata::trees::generate::random(rng, &[sym(0), sym(1)], n, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FCNS round trip on random trees.
    #[test]
    fn fcns_round_trip(t in arb_tree(40)) {
        let nil = sym(2);
        let enc = query_automata::trees::fcns::encode(&t, nil);
        prop_assert!(enc.is_ranked(2));
        prop_assert_eq!(query_automata::trees::fcns::decode(&enc, nil), t);
    }

    /// Example 5.14 SQAu ≡ compiled MSO ≡ reference predicate on random
    /// trees — Theorem 5.17 in action.
    #[test]
    fn example_5_14_equals_mso_query(t in arb_tree(24)) {
        static SETUP: OnceLock<(StrongQa, query_automata::core::ranked::Dbta)> = OnceLock::new();
        let (sqa, automaton) = SETUP.get_or_init(|| {
            let sigma = Alphabet::from_names(["0", "1"]);
            let sqa = example_5_14(&sigma);
            let mut a = sigma.clone();
            let phi = parse_mso(
                "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))",
                &mut a,
            )
            .unwrap();
            let d = unranked::compile_unary(&phi, "v", 2).unwrap();
            (sqa, d)
        });
        let mut via_sqa = sqa.query(&t).unwrap();
        let mut via_mso = query_eval::eval_unary_unranked(automaton, &t, 2);
        via_sqa.sort_unstable();
        via_mso.sort_unstable();
        prop_assert_eq!(via_sqa, via_mso);
    }

    /// Two-pass evaluation ≡ naive per-node evaluation (Figure 6).
    #[test]
    fn two_pass_matches_naive(t in arb_tree(20)) {
        static D: OnceLock<query_automata::core::ranked::Dbta> = OnceLock::new();
        let d = D.get_or_init(|| {
            let mut a = Alphabet::from_names(["0", "1"]);
            let phi = parse_mso(
                "leaf(v) & (ex r. (root(r) & label(r, 1)))",
                &mut a,
            )
            .unwrap();
            unranked::compile_unary(&phi, "v", 2).unwrap()
        });
        let mut fast = query_eval::eval_unary_unranked(d, &t, 2);
        let mut slow = query_eval::eval_unary_unranked_naive(d, &t, 2);
        fast.sort_unstable();
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    /// Unranked run confluence: random schedules select the same nodes.
    #[test]
    fn unranked_runs_are_confluent(t in arb_tree(16), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        static QA: OnceLock<StrongQa> = OnceLock::new();
        let qa = QA.get_or_init(|| example_5_14(&Alphabet::from_names(["0", "1"])));
        let reference = qa.machine().run(&t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rec = qa
            .machine()
            .run_scheduled(&t, qa.machine().default_fuel(&t), |n| rng.gen_range(0..n))
            .unwrap();
        prop_assert_eq!(rec.accepted, reference.accepted);
        prop_assert_eq!(rec.assumed, reference.assumed);
    }
}
