//! (query, document) batch jobs and the aggregate [`BehaviorCache`].
//!
//! A [`Job`] names one evaluation or decision to perform; [`evaluate_cached`]
//! runs it against a [`BehaviorCache`], and [`par_evaluate`] /
//! [`par_evaluate_with`] fan a slice of jobs out over the work-stealing
//! executor with one private cache per worker. Outcomes are returned in job
//! order and are identical — including selection order — to running each
//! job's plain sequential engine.

use qa_base::Symbol;
use qa_core::ranked::RankedQa;
use qa_core::unranked::{UnrankedQa, UpCache};
use qa_decision::ranked_decisions::{containment_cached, non_emptiness_cached, SummaryCache};
use qa_mso::PreparedUnary;
use qa_obs::{NoopObserver, Observer};
use qa_trees::{NodeId, Tree};
use qa_twoway::{CrossingCache, StringQa};

use crate::executor::par_batch_with;

/// One worker's private memoization state, aggregating every cache layer of
/// the workspace:
///
/// - [`CrossingCache`] — hash-consed 2DFA crossing-behavior columns
///   (Theorem 3.9) for [`Job::String`];
/// - [`UpCache`] — memoized up/stay decisions on children pair-strings for
///   [`Job::Unranked`];
/// - [`SummaryCache`] — interned subtree summaries of the §6 emptiness
///   fixpoint for [`Job::NonEmptiness`] / [`Job::Containment`].
///
/// Each layer fingerprints its machine and resets itself when a job switches
/// machines, so one `BehaviorCache` is always safe for a mixed batch — it is
/// merely *fastest* when jobs sharing a machine are adjacent (which the
/// executor's contiguous chunking preserves). The caches share `Rc`s
/// internally and are `!Send`; [`par_evaluate`] therefore builds one per
/// worker rather than sharing one across the batch.
#[derive(Debug, Default)]
pub struct BehaviorCache {
    /// Crossing-behavior columns for string QA jobs.
    pub crossings: CrossingCache,
    /// Up/stay decisions for unranked QA jobs.
    pub ups: UpCache,
    /// Subtree summaries for ranked decision jobs.
    pub summaries: SummaryCache,
}

impl BehaviorCache {
    /// An empty cache aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total lookups answered from memory across all layers.
    pub fn hits(&self) -> u64 {
        self.crossings.hits() + self.ups.hits() + self.summaries.hits()
    }

    /// Total lookups that had to run the underlying machinery.
    pub fn misses(&self) -> u64 {
        self.crossings.misses() + self.ups.misses() + self.summaries.misses()
    }

    /// Drop every interned entry and reset all statistics.
    pub fn clear(&mut self) {
        self.crossings.clear();
        self.ups.clear();
        self.summaries.clear();
    }
}

/// One (query, document) unit of batch work.
///
/// Jobs borrow their query and document, so a batch over 10k documents and a
/// handful of queries costs 10k thin records, not 10k clones.
#[derive(Clone, Copy, Debug)]
pub enum Job<'a> {
    /// Evaluate a string QA on a word via cached behavior analysis
    /// ([`StringQa::query_cached`]). Yields [`Outcome::Positions`].
    String {
        /// The query automaton.
        qa: &'a StringQa,
        /// The input word.
        word: &'a [Symbol],
    },
    /// Evaluate a ranked QA on a tree ([`RankedQa::query_with`]; ranked
    /// runs replay directly and have no cache layer). Yields
    /// [`Outcome::Nodes`].
    Ranked {
        /// The query automaton.
        qa: &'a RankedQa,
        /// The input tree (must respect the machine's rank).
        tree: &'a Tree,
    },
    /// Evaluate an unranked (possibly strong) QA on a tree via memoized
    /// up/stay decisions ([`UnrankedQa::query_cached`]). Yields
    /// [`Outcome::Nodes`].
    Unranked {
        /// The query automaton.
        qa: &'a UnrankedQa,
        /// The input tree.
        tree: &'a Tree,
    },
    /// Evaluate a compiled MSO unary query on a tree. The
    /// [`PreparedUnary`] *is* the cache here — totalization is paid once at
    /// construction, outside the batch. Yields [`Outcome::Nodes`].
    Mso {
        /// The prepared (pre-totalized) compiled query.
        query: &'a PreparedUnary,
        /// The input tree.
        tree: &'a Tree,
        /// Evaluate as an unranked document (via the first-child/next-sibling
        /// encoding) instead of as a ranked tree.
        unranked: bool,
    },
    /// Decide non-emptiness of a ranked QA ([`non_emptiness_cached`]).
    /// Yields [`Outcome::Witness`].
    NonEmptiness {
        /// The query automaton.
        qa: &'a RankedQa,
        /// Summary budget for the fixpoint.
        max_items: usize,
    },
    /// Decide containment `A₁ ⊆ A₂` ([`containment_cached`]). Yields
    /// [`Outcome::Witness`] (a violation, or `None` when contained).
    Containment {
        /// The left (contained) automaton.
        a1: &'a RankedQa,
        /// The right (containing) automaton.
        a2: &'a RankedQa,
        /// Summary budget for the fixpoint.
        max_items: usize,
    },
}

/// The result of one [`Job`], comparable across sequential and parallel
/// runs (`Eq`, so parity is a plain `assert_eq!`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Selected word positions (0-based) of a [`Job::String`].
    Positions(Vec<usize>),
    /// Selected nodes of a tree job, in the engine's order.
    Nodes(Vec<NodeId>),
    /// Decision verdict: `Some((witness_size, marked_node))` for a
    /// non-empty / non-contained instance, `None` otherwise.
    Witness(Option<(usize, NodeId)>),
    /// The engine reported an error (budget exhausted, malformed input);
    /// the message is kept so a batch never panics on one bad job.
    Error(String),
}

/// Run one job against `cache`, reporting to `obs`.
///
/// This is the single-job kernel both [`par_evaluate`] and external callers
/// (e.g. a CLI driving its own executor) use; hits and misses land on the
/// observer as [`qa_obs::Counter::CacheHits`] /
/// [`qa_obs::Counter::CacheMisses`].
pub fn evaluate_cached<O: Observer>(
    job: &Job<'_>,
    cache: &mut BehaviorCache,
    obs: &mut O,
) -> Outcome {
    match *job {
        Job::String { qa, word } => {
            Outcome::Positions(qa.query_cached(word, &mut cache.crossings, obs))
        }
        Job::Ranked { qa, tree } => match qa.query_with(tree, obs) {
            Ok(nodes) => Outcome::Nodes(nodes),
            Err(e) => Outcome::Error(e.to_string()),
        },
        Job::Unranked { qa, tree } => match qa.query_cached(tree, &mut cache.ups, obs) {
            Ok(nodes) => Outcome::Nodes(nodes),
            Err(e) => Outcome::Error(e.to_string()),
        },
        Job::Mso {
            query,
            tree,
            unranked,
        } => Outcome::Nodes(if unranked {
            query.eval_unranked_with(tree, obs)
        } else {
            query.eval_ranked_with(tree, obs)
        }),
        Job::NonEmptiness { qa, max_items } => {
            match non_emptiness_cached(qa, max_items, &mut cache.summaries, obs) {
                Ok(w) => Outcome::Witness(w.map(|w| (w.tree.num_nodes(), w.node))),
                Err(e) => Outcome::Error(e.to_string()),
            }
        }
        Job::Containment { a1, a2, max_items } => {
            match containment_cached(a1, a2, max_items, &mut cache.summaries, obs) {
                Ok(w) => Outcome::Witness(w.map(|w| (w.tree.num_nodes(), w.node))),
                Err(e) => Outcome::Error(e.to_string()),
            }
        }
    }
}

/// Evaluate a batch of jobs on `workers` threads, one private
/// [`BehaviorCache`] per worker; outcomes in job order.
///
/// The parallel result is **identical** to the sequential one: each job's
/// outcome depends only on its query and document (caches change cost, never
/// answers), so worker count and steal order are unobservable in the output.
///
/// # Examples
///
/// Evaluate a query on 10 000 documents in parallel:
///
/// ```
/// use qa_par::{par_evaluate, Job, Outcome};
/// use qa_twoway::string_qa::example_3_4_qa;
///
/// let a = qa_base::Alphabet::from_names(["0", "1"]);
/// let qa = example_3_4_qa(&a);
/// let docs: Vec<Vec<qa_base::Symbol>> = (0..10_000)
///     .map(|i| a.word(if i % 2 == 0 { "0110" } else { "10110" }))
///     .collect();
/// let jobs: Vec<Job> = docs
///     .iter()
///     .map(|w| Job::String { qa: &qa, word: w })
///     .collect();
/// let outcomes = par_evaluate(4, &jobs);
/// assert_eq!(outcomes.len(), 10_000);
/// assert_eq!(outcomes[0], Outcome::Positions(vec![1]));
/// assert_eq!(outcomes[1], Outcome::Positions(vec![0, 2]));
/// ```
pub fn par_evaluate(workers: usize, jobs: &[Job<'_>]) -> Vec<Outcome> {
    par_evaluate_with(workers, jobs, |_| NoopObserver)
}

/// [`par_evaluate`] with a per-worker [`Observer`] built by
/// `make_obs(worker_index)`.
///
/// Each observer lives on its worker's thread for the whole batch, so
/// stateful observers (watchdogs, tracers) see a coherent per-worker
/// stream. To aggregate, hand every worker a [`qa_obs::MetricsObserver`]
/// onto per-worker [`qa_obs::Metrics`] registries and
/// [`qa_obs::Metrics::merge`] them afterwards — counter totals are sums, so
/// the merged profile is independent of how jobs were stolen.
pub fn par_evaluate_with<O: Observer>(
    workers: usize,
    jobs: &[Job<'_>],
    make_obs: impl Fn(usize) -> O + Sync,
) -> Vec<Outcome> {
    par_batch_with(
        workers,
        jobs.iter().collect(),
        |wid| (BehaviorCache::new(), make_obs(wid)),
        |(cache, obs), _i, job| evaluate_cached(job, cache, obs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::Alphabet;
    use qa_core::ranked::query::example_4_4;

    #[test]
    fn mixed_batch_matches_sequential_engines() {
        let sa = Alphabet::from_names(["0", "1"]);
        let sqa = example_3_4_qa_local(&sa);
        let word = sa.word("10110");
        let ca = Alphabet::from_names(["AND", "OR", "0", "1"]);
        let rqa = example_4_4(&ca);
        let mut c = ca.clone();
        let tree = qa_trees::sexpr::from_sexpr("(AND 1 (OR 0 1))", &mut c).unwrap();
        let jobs = [
            Job::String {
                qa: &sqa,
                word: &word,
            },
            Job::Ranked {
                qa: &rqa,
                tree: &tree,
            },
            Job::NonEmptiness {
                qa: &rqa,
                max_items: 10_000,
            },
        ];
        let out = par_evaluate(2, &jobs);
        assert_eq!(out[0], Outcome::Positions(sqa.query(&word).unwrap()));
        assert_eq!(out[1], Outcome::Nodes(rqa.query(&tree).unwrap()));
        let w = qa_decision::ranked_decisions::non_emptiness(&rqa)
            .unwrap()
            .map(|w| (w.tree.num_nodes(), w.node));
        assert_eq!(out[2], Outcome::Witness(w));
    }

    #[test]
    fn errors_become_outcomes_not_panics() {
        let ca = Alphabet::from_names(["AND", "OR", "0", "1"]);
        let rqa = example_4_4(&ca);
        // Self-containment holds, so the fixpoint can never stop early on a
        // violation; a 1-summary budget must trip the budget error.
        let out = par_evaluate(
            2,
            &[Job::Containment {
                a1: &rqa,
                a2: &rqa,
                max_items: 1,
            }],
        );
        assert!(matches!(out[0], Outcome::Error(_)), "got {:?}", out[0]);
    }

    fn example_3_4_qa_local(a: &Alphabet) -> StringQa {
        qa_twoway::string_qa::example_3_4_qa(a)
    }
}
