//! # qa-obs
//!
//! Zero-cost instrumentation for the `query-automata` workspace.
//!
//! Every evaluation loop in the workspace — two-way runs over cuts
//! (Fig. 5), stay-transition rounds (Fig. 6), the EXPTIME decision
//! fixpoints (Prop. 6.1, Thm. 6.3) — is generic over an [`Observer`].
//! Passing the default [`NoopObserver`] compiles each hook to nothing, so
//! the uninstrumented paths are byte-for-byte the pre-instrumentation
//! code; passing a [`MetricsObserver`] or a [`RunTrace`] turns the same
//! loop into a counted, traced, timed run without touching the algorithm.
//!
//! The crate is dependency-free: counters are `std` atomics and the JSON
//! run reports are serialized by hand (see [`json`]).
//!
//! ## The three layers
//!
//! - [`Observer`] — the event sink trait every engine is generic over.
//!   [`NoopObserver`] (zero cost), [`MetricsObserver`] (atomic counters),
//!   [`RunTrace`] (configuration log + per-phase wall-clock), and
//!   [`Tee`] (fan out to two sinks) are the provided implementations.
//! - [`Metrics`] — a registry of atomic [`Counter`]s and fixed-bucket
//!   power-of-two [`Histogram`]s ([`Series`]), shareable across threads,
//!   serialized with [`Metrics::to_json`].
//! - [`RunTrace`] — the complete configuration sequence of a two-way run
//!   (state, position, direction) plus phase timings, renderable as text
//!   for debugging diverging runs ([`RunTrace::render_text`]) or as JSON
//!   ([`RunTrace::to_json`]).

#![deny(missing_docs)]

pub mod context;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod stats;
pub mod trace;

pub use context::{fnv1a64, TraceContext};
pub use metrics::{Histogram, HistogramSnapshot, InfoLabels, Metrics, MetricsObserver};
pub use observer::{Abort, Counter, Machine, NoopObserver, Observer, Series, Tee};
pub use stats::{percentile_sorted, quantile_bucket, quantile_from_buckets};
pub use trace::{PhaseSpan, RunTrace, TraceConfig};
