//! Automata on unranked trees (Section 5 of the paper).

pub mod cache;
pub mod dbta;
pub mod emptiness;
pub mod ops;
pub mod query;
pub mod stay;
pub mod twoway;

pub use cache::UpCache;
pub use dbta::{Dbtau, Nbtau};
pub use query::{StrongQa, UnrankedQa};
pub use stay::StayRule;
pub use twoway::{TwoWayUnranked, TwoWayUnrankedBuilder, UnrankedRunRecord};
