//! A dependency-free work-stealing batch executor on `std::thread::scope`.
//!
//! Jobs are distributed over per-worker deques in **contiguous chunks** (job
//! `i` starts on worker `i / ceil(n/w)`), each worker pops its own deque from
//! the front, and an idle worker steals from the *back* of a victim's deque.
//! Contiguous chunks matter here more than in a generic thread pool: the
//! per-worker contexts built by [`par_batch_with`] hold behavior caches, and
//! neighboring jobs in a batch (same query, similar documents) are exactly
//! the ones that hit those caches. Stealing from the back takes the work the
//! owner would reach last, preserving that locality.
//!
//! Results are returned **in job order** regardless of which worker ran
//! which job, so `par_batch(w, jobs, run)` is observably a parallel `map`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Run `jobs` on `workers` threads with a per-worker mutable context.
///
/// `init(worker_index)` builds one context per worker *inside* that worker's
/// thread; `run(&mut cx, job_index, job)` produces the result for one job.
/// Results come back in job order.
///
/// The context type `C` does **not** need to be [`Send`]: it is created,
/// used, and dropped on a single worker thread. This is deliberate — the
/// behavior caches of this workspace ([`qa_twoway::CrossingCache`],
/// [`qa_core::unranked::UpCache`],
/// [`qa_decision::ranked_decisions::SummaryCache`]) hand out [`std::rc::Rc`]
/// shares internally and are therefore `!Send`; each worker owns a private
/// one. Anything a worker needs to publish beyond its results should go
/// through a shared [`Sync`] sink captured by the closures (e.g. a
/// [`qa_obs::Metrics`] registry, whose counters are atomics).
///
/// With `workers <= 1` (or fewer than two jobs) everything runs inline on
/// the calling thread — no threads are spawned, so the sequential path is
/// byte-for-byte the plain loop.
///
/// # Examples
///
/// ```
/// use qa_obs::NoopObserver;
/// use qa_twoway::string_qa::example_3_4_qa;
/// use qa_twoway::CrossingCache;
///
/// let a = qa_base::Alphabet::from_names(["0", "1"]);
/// let qa = example_3_4_qa(&a);
/// let docs: Vec<Vec<qa_base::Symbol>> =
///     ["0110", "1011", "0110", "111"].iter().map(|w| a.word(w)).collect();
/// let selected = qa_par::par_batch_with(
///     2,
///     docs.iter().collect(),
///     |_worker| CrossingCache::new(),
///     |cache, _i, word| qa.query_cached(word, cache, &mut NoopObserver),
/// );
/// assert_eq!(selected[0], selected[2]); // same document, same answer
/// ```
pub fn par_batch_with<J, R, C>(
    workers: usize,
    jobs: Vec<J>,
    init: impl Fn(usize) -> C + Sync,
    run: impl Fn(&mut C, usize, J) -> R + Sync,
) -> Vec<R>
where
    J: Send,
    R: Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        let mut cx = init(0);
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| run(&mut cx, i, j))
            .collect();
    }
    let w = workers.min(n);
    let chunk = n.div_ceil(w);
    let mut deques: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..w).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, j) in jobs.into_iter().enumerate() {
        deques[(i / chunk).min(w - 1)]
            .get_mut()
            .expect("unshared")
            .push_back((i, j));
    }
    let deques = &deques;
    let init = &init;
    let run = &run;
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w)
            .map(|wid| {
                s.spawn(move || {
                    let mut cx = init(wid);
                    let mut got = Vec::new();
                    loop {
                        // Own work first (front), then steal (back).
                        let next = deques[wid].lock().expect("deque lock").pop_front();
                        let next = next.or_else(|| {
                            (1..w).find_map(|k| {
                                deques[(wid + k) % w].lock().expect("deque lock").pop_back()
                            })
                        });
                        // All deques empty: no new jobs ever appear, so done.
                        let Some((i, j)) = next else { break };
                        got.push((i, run(&mut cx, i, j)));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "job {i} ran twice");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every job ran exactly once"))
        .collect()
}

/// [`par_batch_with`] without a per-worker context: a parallel `map` over
/// `jobs`, results in job order.
///
/// `run` receives the index of the worker thread executing the job (useful
/// for routing into per-worker sinks) and the job itself.
///
/// # Examples
///
/// ```
/// let squares = qa_par::par_batch(4, (0u64..100).collect(), |_worker, n| n * n);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn par_batch<J, R>(workers: usize, jobs: Vec<J>, run: impl Fn(usize, J) -> R + Sync) -> Vec<R>
where
    J: Send,
    R: Send,
{
    par_batch_with(workers, jobs, |wid| wid, |wid, _i, j| run(*wid, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = jobs.iter().map(|x| x * 3 + 1).collect();
        for workers in [0, 1, 2, 3, 4, 7, 64, 1000] {
            assert_eq!(
                par_batch(workers, jobs.clone(), |_w, x| x * 3 + 1),
                expect,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let out = par_batch(4, (0..1000u64).collect(), |_w, x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(
            par_batch(4, Vec::<u32>::new(), |_w, x| x),
            Vec::<u32>::new()
        );
        assert_eq!(par_batch(4, vec![9u32], |_w, x| x + 1), vec![10]);
    }

    #[test]
    fn contexts_are_per_worker_and_initialized_with_worker_index() {
        // Each worker's context records its own worker index; every job
        // must observe the context of the worker that ran it.
        let pairs = par_batch_with(3, (0..100usize).collect(), |wid| wid, |cx, _i, _j| *cx);
        assert_eq!(pairs.len(), 100);
        assert!(pairs.iter().all(|&wid| wid < 3));
    }

    #[test]
    fn stealing_drains_an_unbalanced_batch() {
        // One slow job at the head of worker 0's chunk; the rest trivial.
        // The batch must still complete with all results in order.
        let out = par_batch(4, (0..64u64).collect(), |_w, x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_uses_one_context() {
        let out = par_batch_with(
            1,
            vec![1u32, 2, 3],
            |wid| {
                assert_eq!(wid, 0);
                0u32
            },
            |cx, _i, j| {
                *cx += j;
                *cx
            },
        );
        assert_eq!(out, vec![1, 3, 6], "running sums prove a single context");
    }
}
