//! [`SeriesStore`]: fixed-capacity rings of `(tick, value)` samples.
//!
//! The store is the sentinel's memory: every scrape appends one sample per
//! metric under a caller-supplied logical tick, and the window queries
//! ([`SeriesStore::delta`], [`SeriesStore::rate`],
//! [`SeriesStore::quantile_over_window`]) read the recent past back out.
//! Ticks are logical, not wall-clock — the fleet replay drives one tick per
//! job and the live scrape loop one tick per scrape — which is what keeps
//! alert evaluation byte-identical across `--jobs N` and reruns.
//!
//! Out-of-order appends are rejected per series (a sample's tick must
//! exceed the last retained tick), mirroring the tick discipline of
//! `qa_mesh::timeline::Timeline`.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use qa_obs::json::{self, push_str};
use qa_obs::stats::quantile_bucket;
use qa_obs::{Counter, Metrics, Series};

/// Label pairs, sorted by key (canonical form for series identity).
pub type Labels = Vec<(String, String)>;

/// Identity of one series: metric name plus its canonicalized label set.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name, e.g. `qa_fleet_budget_trips_total`.
    pub name: String,
    /// Labels sorted by key; empty for unlabeled series.
    pub labels: Labels,
}

impl SeriesKey {
    /// Key for `name` with `labels` (canonicalized by sorting on key).
    pub fn new(name: &str, labels: impl IntoIterator<Item = (String, String)>) -> SeriesKey {
        let mut labels: Labels = labels.into_iter().collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Render as `name` or `name{k="v",…}` for logs and JSON.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            push_str(&mut out, v);
        }
        out.push('}');
        out
    }
}

/// One series' ring: at most `cap` samples, strictly increasing ticks.
#[derive(Clone, Debug)]
struct Ring {
    samples: VecDeque<(u64, f64)>,
    dropped: u64,
}

/// Fixed-capacity time-series rings keyed by metric name + labels.
#[derive(Debug)]
pub struct SeriesStore {
    series: BTreeMap<SeriesKey, Ring>,
    cap: usize,
    rejected: u64,
}

impl SeriesStore {
    /// Store whose rings retain at most `cap` samples each (`cap ≥ 2`, so
    /// every window query has at least one interval to look at).
    pub fn new(cap: usize) -> SeriesStore {
        assert!(cap >= 2, "series rings need capacity >= 2");
        SeriesStore {
            series: BTreeMap::new(),
            cap,
            rejected: 0,
        }
    }

    /// Append one sample. Returns `false` (and drops the sample) when the
    /// tick does not strictly increase the series' last retained tick.
    pub fn append(&mut self, key: SeriesKey, tick: u64, value: f64) -> bool {
        let ring = self.series.entry(key).or_insert_with(|| Ring {
            samples: VecDeque::new(),
            dropped: 0,
        });
        if let Some(&(last, _)) = ring.samples.back() {
            if tick <= last {
                self.rejected += 1;
                return false;
            }
        }
        if ring.samples.len() == self.cap {
            ring.samples.pop_front();
            ring.dropped += 1;
        }
        ring.samples.push_back((tick, value));
        true
    }

    /// Samples rejected for non-increasing ticks, across all series.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The retained samples of the series `key`, oldest first.
    pub fn samples(&self, key: &SeriesKey) -> Vec<(u64, f64)> {
        match self.series.get(key) {
            Some(ring) => ring.samples.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Latest `(tick, value)` of the series `key`.
    pub fn latest(&self, key: &SeriesKey) -> Option<(u64, f64)> {
        self.series.get(key)?.samples.back().copied()
    }

    /// Value of `key` at the greatest retained tick `≤ at`, together with
    /// that tick. `None` when nothing that old is retained.
    fn value_at_or_before(&self, key: &SeriesKey, at: u64) -> Option<(u64, f64)> {
        let ring = self.series.get(key)?;
        ring.samples.iter().rev().find(|&&(t, _)| t <= at).copied()
    }

    /// Increase of `key` over the last `window` ticks ending at `now`:
    /// `v(now) − v(now − window)`, reading each endpoint at the greatest
    /// retained tick at or before it. The window clamps to the retained
    /// samples: when it reaches back before the series' first sample, the
    /// baseline is 0 (a counter is born at zero) as long as nothing was
    /// evicted, and the oldest retained value once the ring has dropped
    /// history. `None` when the series has no sample at or before `now`.
    pub fn delta(&self, key: &SeriesKey, window: u64, now: u64) -> Option<f64> {
        let (_, end) = self.value_at_or_before(key, now)?;
        let start_tick = now.saturating_sub(window);
        let start = match self.value_at_or_before(key, start_tick) {
            Some((_, v)) => v,
            None => {
                let ring = self.series.get(key)?;
                if ring.dropped == 0 {
                    0.0
                } else {
                    ring.samples.front().map(|&(_, v)| v)?
                }
            }
        };
        Some(end - start)
    }

    /// Per-tick rate of increase over the last `window` ticks:
    /// [`SeriesStore::delta`] divided by the window length.
    pub fn rate(&self, key: &SeriesKey, window: u64, now: u64) -> Option<f64> {
        if window == 0 {
            return None;
        }
        self.delta(key, window, now).map(|d| d / window as f64)
    }

    /// Quantile `q` of the samples a histogram family recorded during the
    /// last `window` ticks. `family` is the base name (the store holds its
    /// cumulative `le` buckets as `<family>_bucket` series); `labels`
    /// selects one labeled instance (every non-`le` label must match
    /// exactly). The cumulative-in-`le`, cumulative-in-time buckets are
    /// de-cumulated on both axes, then the shared nearest-rank rule
    /// ([`quantile_bucket`]) picks the bucket whose `le` bound is returned.
    /// `None` when the window saw no samples.
    pub fn quantile_over_window(
        &self,
        family: &str,
        labels: &Labels,
        window: u64,
        q: f64,
        now: u64,
    ) -> Option<f64> {
        let bucket_name = format!("{family}_bucket");
        // Collect (le, windowed delta) per bucket series, ascending by le.
        let mut buckets: Vec<(f64, f64)> = Vec::new();
        for key in self.series.keys() {
            if key.name != bucket_name {
                continue;
            }
            let le = match key.label("le") {
                Some("+Inf") => f64::INFINITY,
                Some(le) => le.parse::<f64>().ok()?,
                None => continue,
            };
            let non_le_match = labels
                .iter()
                .all(|(k, v)| k == "le" || key.label(k) == Some(v.as_str()));
            if !non_le_match {
                continue;
            }
            let d = self.delta(key, window, now)?;
            buckets.push((le, d));
        }
        if buckets.is_empty() {
            return None;
        }
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        // De-cumulate across le to get per-bucket counts in the window.
        let mut counts: Vec<u64> = Vec::with_capacity(buckets.len());
        let mut prev = 0.0;
        for &(_, cumulative) in &buckets {
            counts.push((cumulative - prev).max(0.0).round() as u64);
            prev = cumulative;
        }
        let i = quantile_bucket(&counts, q)?;
        Some(buckets[i].0)
    }

    /// Ingest one scrape of a [`Metrics`] registry under logical tick
    /// `tick`: every counter as `<prefix>_<name>_total`, every non-empty
    /// histogram as cumulative `<prefix>_<series>_bucket{le=…}` plus
    /// `_sum`/`_count` — the exposition families, so in-process scrapes and
    /// parsed remote scrapes land in identically-named series. `labels` are
    /// attached to every sample (e.g. `worker="w1"` in the mesh
    /// coordinator's fleet store). Returns how many samples were appended.
    pub fn observe_metrics(
        &mut self,
        metrics: &Metrics,
        prefix: &str,
        labels: &Labels,
        tick: u64,
    ) -> usize {
        let mut appended = 0;
        let mut push = |store: &mut Self, name: String, extra: Option<(String, String)>, v: f64| {
            let mut ls = labels.clone();
            if let Some(kv) = extra {
                ls.push(kv);
            }
            if store.append(SeriesKey::new(&name, ls), tick, v) {
                appended += 1;
            }
        };
        for c in Counter::ALL {
            push(
                self,
                format!("{prefix}_{}_total", c.name()),
                None,
                metrics.get(c) as f64,
            );
        }
        for s in Series::ALL {
            let snap = metrics.histogram(s);
            if snap.count == 0 {
                continue;
            }
            let base = format!("{prefix}_{}", s.name());
            let used =
                snap.buckets.len() - snap.buckets.iter().rev().take_while(|&&b| b == 0).count();
            let mut cumulative = 0u64;
            for (i, &b) in snap.buckets[..used].iter().enumerate() {
                cumulative += b;
                push(
                    self,
                    format!("{base}_bucket"),
                    Some(("le".to_string(), qa_obs::stats::bucket_le(i).to_string())),
                    cumulative as f64,
                );
            }
            push(
                self,
                format!("{base}_bucket"),
                Some(("le".to_string(), "+Inf".to_string())),
                snap.count as f64,
            );
            push(self, format!("{base}_sum"), None, snap.sum as f64);
            push(self, format!("{base}_count"), None, snap.count as f64);
        }
        appended
    }

    /// Render series as JSON: `{"series":[{"name","labels",…,"samples":
    /// [[tick,value],…]},…]}`. `name` filters to one metric family
    /// (`None` = everything), `n` caps the samples per series to the most
    /// recent `n` (oldest first). The `/series` endpoint body.
    pub fn to_json(&self, name: Option<&str>, n: usize) -> String {
        let elems = self
            .series
            .iter()
            .filter(|(k, _)| name.is_none_or(|f| k.name == f))
            .map(|(k, ring)| {
                json::object(|w| {
                    w.field_str("name", &k.name);
                    w.field_raw(
                        "labels",
                        &json::object(|lw| {
                            for (lk, lv) in &k.labels {
                                lw.field_str(lk, lv);
                            }
                        }),
                    );
                    w.field_u64("dropped", ring.dropped);
                    let skip = ring.samples.len().saturating_sub(n);
                    let samples = json::array(ring.samples.iter().skip(skip).map(|&(t, v)| {
                        let mut s = String::from("[");
                        s.push_str(&t.to_string());
                        s.push(',');
                        if v.is_finite() {
                            s.push_str(&format!("{v:?}"));
                        } else {
                            s.push_str("null");
                        }
                        s.push(']');
                        s
                    }));
                    w.field_raw("samples", &samples);
                })
            });
        json::object(|w| w.field_raw("series", &json::array(elems)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str) -> SeriesKey {
        SeriesKey::new(name, [])
    }

    #[test]
    fn append_rejects_non_increasing_ticks() {
        let mut s = SeriesStore::new(8);
        assert!(s.append(key("x"), 1, 1.0));
        assert!(s.append(key("x"), 2, 2.0));
        assert!(!s.append(key("x"), 2, 3.0), "equal tick rejected");
        assert!(!s.append(key("x"), 1, 3.0), "older tick rejected");
        assert_eq!(s.rejected(), 2);
        assert_eq!(s.samples(&key("x")), vec![(1, 1.0), (2, 2.0)]);
        // Other series have their own tick ladders.
        assert!(s.append(key("y"), 1, 9.0));
    }

    #[test]
    fn rings_evict_oldest_at_capacity() {
        let mut s = SeriesStore::new(3);
        for t in 1..=5 {
            assert!(s.append(key("x"), t, t as f64));
        }
        assert_eq!(s.samples(&key("x")), vec![(3, 3.0), (4, 4.0), (5, 5.0)]);
        assert_eq!(s.latest(&key("x")), Some((5, 5.0)));
    }

    #[test]
    fn labels_are_canonicalized() {
        let a = SeriesKey::new(
            "m",
            [
                ("b".to_string(), "2".to_string()),
                ("a".to_string(), "1".to_string()),
            ],
        );
        let b = SeriesKey::new(
            "m",
            [
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string()),
            ],
        );
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(key("m").render(), "m");
    }

    #[test]
    fn delta_and_rate_windows() {
        let mut s = SeriesStore::new(64);
        // A counter growing by 2 per tick.
        for t in 1..=10 {
            s.append(key("c"), t, (t * 2) as f64);
        }
        assert_eq!(s.delta(&key("c"), 5, 10), Some(10.0));
        assert_eq!(s.rate(&key("c"), 5, 10), Some(2.0));
        // A window older than the series: counters are born at zero, so
        // the increase is the whole counter value.
        assert_eq!(s.delta(&key("c"), 100, 10), Some(20.0));
        // …until eviction loses history, when the oldest retained sample
        // becomes the baseline.
        let mut small = SeriesStore::new(4);
        for t in 1..=10 {
            small.append(key("c"), t, (t * 2) as f64);
        }
        assert_eq!(small.delta(&key("c"), 100, 10), Some(20.0 - 14.0));
        // Eval point before any sample: no answer.
        assert_eq!(s.delta(&key("c"), 5, 0), None);
        // Gappy series read at the greatest tick at or before the endpoint.
        let mut g = SeriesStore::new(64);
        g.append(key("c"), 2, 10.0);
        g.append(key("c"), 8, 40.0);
        assert_eq!(g.delta(&key("c"), 4, 9), Some(30.0), "start reads tick 2");
        assert_eq!(g.rate(&key("c"), 0, 9), None, "zero window is undefined");
    }

    #[test]
    fn observe_metrics_lands_exposition_names() {
        let m = Metrics::new();
        m.count(Counter::Steps, 40);
        m.record(Series::TraceLength, 3);
        let mut s = SeriesStore::new(16);
        let n = s.observe_metrics(&m, "qa_fleet", &Vec::new(), 1);
        assert!(n > Counter::COUNT, "counters plus histogram families");
        assert_eq!(s.latest(&key("qa_fleet_steps_total")), Some((1, 40.0)));
        assert_eq!(s.latest(&key("qa_fleet_jobs_total")), Some((1, 0.0)));
        let le3 = SeriesKey::new(
            "qa_fleet_trace_length_bucket",
            [("le".to_string(), "3".to_string())],
        );
        assert_eq!(s.latest(&le3), Some((1, 1.0)));
        assert_eq!(
            s.latest(&key("qa_fleet_trace_length_count")),
            Some((1, 1.0))
        );
    }

    #[test]
    fn quantile_over_window_decumulates_both_axes() {
        let m = Metrics::new();
        let mut s = SeriesStore::new(16);
        // Tick 1: one small sample. Ticks 2-4: large samples only.
        m.record(Series::RunSteps, 1);
        s.observe_metrics(&m, "qa", &Vec::new(), 1);
        for t in 2..=4 {
            m.record(Series::RunSteps, 1000);
            s.observe_metrics(&m, "qa", &Vec::new(), t);
        }
        // Window covering only ticks 2-4 must not see the tick-1 sample.
        let q = s
            .quantile_over_window("qa_run_steps", &Vec::new(), 3, 0.5, 4)
            .expect("window has samples");
        assert_eq!(q, 1023.0, "median of the window is a large sample");
        // The full history window sees the small sample at p0.
        let q0 = s
            .quantile_over_window("qa_run_steps", &Vec::new(), 10, 0.0, 4)
            .unwrap();
        assert_eq!(q0, 1.0);
        // Unknown family: no answer.
        assert_eq!(
            s.quantile_over_window("qa_nope", &Vec::new(), 3, 0.5, 4),
            None
        );
    }

    #[test]
    fn json_render_filters_and_caps() {
        let mut s = SeriesStore::new(8);
        for t in 1..=4 {
            s.append(key("a"), t, t as f64);
            s.append(key("b"), t, 0.5);
        }
        let all = s.to_json(None, 10);
        let v = json::parse(&all).unwrap();
        assert_eq!(v.get("series").and_then(|x| x.as_arr()).unwrap().len(), 2);
        let only_a = s.to_json(Some("a"), 2);
        let v = json::parse(&only_a).unwrap();
        let arr = v.get("series").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(arr.len(), 1);
        let samples = arr[0].get("samples").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(samples.len(), 2, "capped to the most recent n");
        assert_eq!(samples[0].as_arr().unwrap()[0].as_u64(), Some(3));
    }
}
