//! Federated observability, pure-library edition.
//!
//! `qa-fleet --mesh N` does this across processes; here the same pipeline
//! runs in one binary so every moving part is visible:
//!
//! 1. a [`ShardPlan`] deals a 12-job grid round-robin over N "workers",
//!    each with its own [`Metrics`] registry and its own [`PulseServer`]
//!    on an ephemeral loopback port;
//! 2. every job runs the Example 5.14 strong query automaton over a tree
//!    that grows with the job index, so shards carry genuinely different
//!    workloads;
//! 3. the coordinator scrapes each worker's `/metrics` over real HTTP
//!    ([`http_get`] — the same std-only client the mesh uses), parses the
//!    exposition back into a registry, and folds the registries with
//!    [`federate_metrics`].
//!
//! Because [`Metrics::merge`] is commutative and associative, the
//! federated exposition is **byte-identical** for 1, 2 and 4 workers —
//! the invariant the mesh e2e tests pin, demonstrated here without
//! spawning a single process. The example closes with the attribution
//! side of federation: [`federate_profile`] prefixes every collapsed
//! stack with its worker id, and [`federate_flight`] nests
//! correlation-stamped flight dumps under one run id.
//!
//! Run with: `cargo run --example federation`

use std::sync::Arc;

use query_automata::flight::FlightRecorder;
use query_automata::mesh::{federate_flight, federate_metrics, federate_profile, ShardPlan};
use query_automata::obs::Metrics;
use query_automata::prelude::*;
use query_automata::probe::export::prometheus_text;
use query_automata::pulse::{http_get, HttpTimeouts, PulseServer, PulseState};

const JOBS: usize = 12;
const PREFIX: &str = "qa_fed";

/// Job `i`: query a flat tree of `i + 2` leaves with the Example 5.14
/// automaton (select every 1-leaf with no 1-labeled left sibling).
fn run_job(i: usize, sigma: &Alphabet, qa: &StrongQa, obs: &mut impl Observer) -> usize {
    let leaves: String = (0..i + 2)
        .map(|j| if j % 3 == 0 { " 1" } else { " 0" })
        .collect();
    let mut names = sigma.clone();
    let tree = from_sexpr(&format!("(0{leaves})"), &mut names).expect("well-formed tree");
    qa.query_with(&tree, obs).expect("query runs").len()
}

/// Run the whole grid over `n` workers and return the federated render.
fn mesh_of(n: usize, sigma: &Alphabet, qa: &StrongQa) -> String {
    let plan = ShardPlan::new(n, JOBS);
    let mut scrapes = Vec::new();
    for shard in 0..n {
        // Each worker owns a registry and serves it, exactly like a
        // `qa-fleet --serve` process would.
        let metrics = Arc::new(Metrics::new());
        let state = PulseState::new(Arc::clone(&metrics), PREFIX);
        let server = PulseServer::serve("127.0.0.1:0", state).expect("bind loopback");

        let mut obs = metrics.observer();
        for job in plan.jobs_for(shard) {
            run_job(job, sigma, qa, &mut obs);
        }

        let response = http_get(server.local_addr(), "/metrics", HttpTimeouts::default())
            .expect("scrape worker");
        assert!(response.is_ok(), "worker answered {}", response.status);
        scrapes.push(response.body);
        server.shutdown();
    }
    let federated =
        federate_metrics(scrapes.iter().map(|s| s.as_str()), PREFIX).expect("scrapes parse");
    prometheus_text(&federated, PREFIX)
}

fn main() {
    let sigma = Alphabet::from_names(["0", "1"]);
    let qa = example_5_14(&sigma);

    // ── Shard invariance ─────────────────────────────────────────────────
    let baseline = mesh_of(1, &sigma, &qa);
    for n in [2, 4] {
        let render = mesh_of(n, &sigma, &qa);
        assert_eq!(render, baseline, "federation must be shard-invariant");
        println!("{n} workers -> federated /metrics identical to 1 worker");
    }
    println!("\n=== federated exposition (counters only) ===");
    for line in baseline
        .lines()
        .filter(|l| l.ends_with(|c: char| c.is_ascii_digit()))
    {
        println!("{line}");
    }

    // ── Attribution: profiles and flight dumps keep worker identity ──────
    let profile = federate_profile(&[
        ("w0".to_string(), "query;scan 130\n".to_string()),
        ("w1".to_string(), "query;scan 95\nquery 12\n".to_string()),
    ]);
    println!("\n=== federated profile.folded ===\n{profile}");

    let mut dumps = Vec::new();
    for (shard, worker) in ["w0", "w1"].iter().enumerate() {
        // The recorder is an Observer: run one job through it and the
        // retained tail comes out correlation-stamped.
        let mut recorder = FlightRecorder::with_capacity(8);
        recorder.set_correlation("fed-demo", worker);
        run_job(shard, &sigma, &qa, &mut recorder);
        dumps.push(recorder.to_json());
    }
    let flight = federate_flight("fed-demo", &dumps);
    println!("=== federated flight.json ===\n{flight}");
}
