//! Step-count regression gate: compare two `BENCH_obs.json` reports.
//!
//! Every number in a bench_obs report is a machine-independent event count
//! (steps, table lookups, fixpoint rounds …), so a checked-in baseline can
//! be compared exactly across machines — drift beyond a small tolerance
//! means an algorithm started doing different *work*, not that the runner
//! was slow.

use qa_obs::json::Value;

/// One metric that moved beyond tolerance between baseline and current.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Scenario name (top-level key in the report).
    pub scenario: String,
    /// Metric path inside the scenario, e.g. `counters.steps` or
    /// `series.run_steps.sum`.
    pub metric: String,
    /// Baseline value (`None` = the metric is new).
    pub baseline: Option<u64>,
    /// Current value (`None` = the metric disappeared).
    pub current: Option<u64>,
}

impl Drift {
    /// One-line rendering for CLI/CI logs.
    pub fn render(&self) -> String {
        let show = |v: &Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "missing".to_string(),
        };
        format!(
            "{}/{}: baseline {} -> current {}",
            self.scenario,
            self.metric,
            show(&self.baseline),
            show(&self.current)
        )
    }
}

/// Whether `current` is within relative `tolerance` of `baseline`.
/// A zero baseline admits only zero (any appearance of work is drift).
fn within(baseline: u64, current: u64, tolerance: f64) -> bool {
    if baseline == current {
        return true;
    }
    let delta = (current as f64 - baseline as f64).abs();
    delta <= tolerance * baseline as f64
}

/// Union of the keys of two optional JSON objects, first object's order
/// first.
fn union_keys<'a>(a: Option<&'a Value>, b: Option<&'a Value>) -> Vec<&'a str> {
    let mut keys: Vec<&str> = Vec::new();
    for v in [a, b].into_iter().flatten() {
        if let Some(obj) = v.as_obj() {
            for (k, _) in obj {
                if !keys.contains(&k.as_str()) {
                    keys.push(k);
                }
            }
        }
    }
    keys
}

fn check_metric(
    drifts: &mut Vec<Drift>,
    scenario: &str,
    metric: String,
    baseline: Option<u64>,
    current: Option<u64>,
    tolerance: f64,
) {
    let ok = match (baseline, current) {
        (Some(b), Some(c)) => within(b, c, tolerance),
        (None, None) => true,
        _ => false,
    };
    if !ok {
        drifts.push(Drift {
            scenario: scenario.to_string(),
            metric,
            baseline,
            current,
        });
    }
}

/// The scenario map of a parsed bench report: the `scenarios` field of a
/// suite-wrapped report (`{"suite": …, "scenarios": {…}}` — the unified
/// schema shared by `BENCH_obs.json` and `BENCH_obs_par.json`), or the
/// report itself for the legacy flat shape. Anything outside `scenarios`
/// (e.g. a wall-clock `info` block) is thereby excluded from gating.
pub fn scenarios(report: &Value) -> &Value {
    report.get("scenarios").unwrap_or(report)
}

/// The `suite` tag of a unified report, if present.
pub fn suite(report: &Value) -> Option<&str> {
    report.get("suite").and_then(Value::as_str)
}

/// Compare two parsed bench_obs reports. Returns every counter or series
/// total (`count` and `sum`) whose current value drifts beyond relative
/// `tolerance` of the baseline, including metrics or whole scenarios
/// present on only one side. Empty result = gate passes.
pub fn compare_reports(baseline: &Value, current: &Value, tolerance: f64) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for scenario in union_keys(Some(baseline), Some(current)) {
        let (b, c) = (baseline.get(scenario), current.get(scenario));
        if b.is_none() || c.is_none() {
            drifts.push(Drift {
                scenario: scenario.to_string(),
                metric: "scenario".to_string(),
                baseline: b.map(|_| 1),
                current: c.map(|_| 1),
            });
            continue;
        }
        let (b, c) = (b.unwrap(), c.unwrap());
        let (bc, cc) = (b.get("counters"), c.get("counters"));
        for k in union_keys(bc, cc) {
            check_metric(
                &mut drifts,
                scenario,
                format!("counters.{k}"),
                bc.and_then(|v| v.get(k)).and_then(Value::as_u64),
                cc.and_then(|v| v.get(k)).and_then(Value::as_u64),
                tolerance,
            );
        }
        let (bs, cs) = (b.get("series"), c.get("series"));
        for k in union_keys(bs, cs) {
            let (bh, ch) = (bs.and_then(|v| v.get(k)), cs.and_then(|v| v.get(k)));
            for total in ["count", "sum"] {
                check_metric(
                    &mut drifts,
                    scenario,
                    format!("series.{k}.{total}"),
                    bh.and_then(|v| v.get(total)).and_then(Value::as_u64),
                    ch.and_then(|v| v.get(total)).and_then(Value::as_u64),
                    tolerance,
                );
            }
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::json::parse;

    fn report(steps: u64, sum: u64) -> Value {
        parse(&format!(
            r#"{{"s1":{{"counters":{{"steps":{steps}}},"series":{{"run_steps":{{"count":1,"sum":{sum},"min":{sum},"max":{sum},"mean":1.0,"buckets":[0,1]}}}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(100, 40);
        assert!(compare_reports(&r, &r, 0.0).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_flagged() {
        let base = report(100, 40);
        let cur = report(112, 40);
        // 12% steps drift: fails at 5%, passes at 15%
        let drifts = compare_reports(&base, &cur, 0.05);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "counters.steps");
        assert_eq!(drifts[0].baseline, Some(100));
        assert_eq!(drifts[0].current, Some(112));
        assert!(compare_reports(&base, &cur, 0.15).is_empty());
    }

    #[test]
    fn series_totals_are_gated() {
        let base = report(100, 40);
        let cur = report(100, 90);
        let drifts = compare_reports(&base, &cur, 0.1);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "series.run_steps.sum");
    }

    #[test]
    fn zero_baseline_admits_only_zero() {
        assert!(within(0, 0, 0.1));
        assert!(!within(0, 1, 0.1));
    }

    #[test]
    fn missing_and_new_metrics_are_drift() {
        let base = parse(r#"{"s1":{"counters":{"steps":5},"series":{}}}"#).unwrap();
        let cur = parse(r#"{"s1":{"counters":{"reversals":5},"series":{}}}"#).unwrap();
        let drifts = compare_reports(&base, &cur, 1.0);
        assert_eq!(drifts.len(), 2);
        assert_eq!(drifts[0].metric, "counters.steps");
        assert_eq!(drifts[0].current, None);
        assert_eq!(drifts[1].metric, "counters.reversals");
        assert_eq!(drifts[1].baseline, None);
    }

    #[test]
    fn missing_scenario_is_drift() {
        let base = parse(r#"{"s1":{"counters":{},"series":{}}}"#).unwrap();
        let cur = parse(r#"{"s2":{"counters":{},"series":{}}}"#).unwrap();
        let drifts = compare_reports(&base, &cur, 1.0);
        assert_eq!(drifts.len(), 2);
        assert!(drifts.iter().all(|d| d.metric == "scenario"));
    }

    #[test]
    fn suite_wrapped_reports_gate_their_scenarios_only() {
        let wrapped = parse(
            r#"{"suite":"obs_par","scenarios":{"s1":{"counters":{"steps":5}}},"info":{"seq_ns":123456}}"#,
        )
        .unwrap();
        assert_eq!(suite(&wrapped), Some("obs_par"));
        let scen = scenarios(&wrapped);
        assert!(scen.get("s1").is_some());
        assert!(scen.get("info").is_none(), "info is outside the gate");
        assert!(compare_reports(scen, scen, 0.0).is_empty());
        // Legacy flat reports pass through unchanged.
        let flat = parse(r#"{"s1":{"counters":{"steps":5}}}"#).unwrap();
        assert!(scenarios(&flat).get("s1").is_some());
        assert_eq!(suite(&flat), None);
    }

    #[test]
    fn gate_passes_on_the_committed_baselines_against_themselves() {
        for (path, text, tag) in [
            (
                "BENCH_obs.json",
                include_str!("../../../BENCH_obs.json"),
                "obs",
            ),
            (
                "BENCH_obs_par.json",
                include_str!("../../../BENCH_obs_par.json"),
                "obs_par",
            ),
        ] {
            let v = parse(text).unwrap_or_else(|e| panic!("parse {path}: {e:?}"));
            assert_eq!(suite(&v), Some(tag), "{path} carries its suite tag");
            let scen = scenarios(&v);
            assert!(compare_reports(scen, scen, 0.0).is_empty(), "{path}");
        }
        let obs = parse(include_str!("../../../BENCH_obs.json")).unwrap();
        assert!(scenarios(&obs).get("example_3_4_string_query").is_some());
    }
}
