//! The library's failure modes, on purpose: parse errors, validation
//! failures, loop detection, and strongness violations all surface as
//! typed [`query_automata::base::Error`] values — never panics.
//!
//! ```sh
//! cargo run --example error_handling
//! ```

use query_automata::prelude::*;
use query_automata::twoway::{tape::Tape, Dir, TwoDfaBuilder};
use query_automata::xml::{figures, parse_document, validate, Dtd};

fn main() {
    // ── Parse errors carry positions and context ─────────────────────────
    let mut sigma = Alphabet::new();
    for bad in ["(f (g x", "f g", "(f $)"] {
        let err = from_sexpr(bad, &mut sigma).unwrap_err();
        println!("sexpr {bad:?}: {err}");
    }
    for bad in ["<a><b></a></b>", "<a>", "text"] {
        let err = parse_document(bad).unwrap_err();
        println!("xml {bad:?}: {err}");
    }
    let err = parse_mso("ex x (label(x, a))", &mut sigma).unwrap_err();
    println!("mso missing dot: {err}");

    // ── DTD validation failures name the offending element ──────────────
    let (doc, dtd) = figures::bibliography().unwrap();
    let mut names = doc.alphabet.clone();
    let bad = query_automata::xml::parser::parse_with_alphabet(
        "<bibliography><book><author>x</author><title>t</title><year>y</year></book></bibliography>",
        &mut names,
    )
    .unwrap();
    println!(
        "validation: {}",
        validate::validate(&dtd, &bad.tree).unwrap_err()
    );
    let err = Dtd::parse("<!ELEMENT x (a)> <!ELEMENT x (b)>", &mut names).unwrap_err();
    println!("dtd: {err}");

    // ── A looping 2DFA is detected, not spun forever ─────────────────────
    let mut b = TwoDfaBuilder::new(1);
    let q = b.add_state();
    let r = b.add_state();
    b.set_initial(q);
    b.set_action(q, Tape::LeftMarker, Dir::Right, q);
    b.set_action_all_symbols(q, Dir::Right, q);
    b.set_action(q, Tape::RightMarker, Dir::Left, r);
    b.set_action_all_symbols(r, Dir::Right, q);
    b.set_action(r, Tape::LeftMarker, Dir::Right, q);
    let loopy = b.build().unwrap();
    let err = loopy.run(&[Symbol::from_index(0)]).unwrap_err();
    println!("looping 2DFA: {err}");

    // ── Builder invariants reject ill-formed machines up front ───────────
    let mut b = TwoDfaBuilder::new(1);
    let q = b.add_state();
    b.set_action(q, Tape::LeftMarker, Dir::Left, q);
    println!("marker violation: {}", b.build().unwrap_err());

    println!("\nall failure modes surfaced as typed errors ✓");
}
