//! MSO over unranked trees (Theorem 5.4), realized through the
//! first-child/next-sibling encoding.
//!
//! An unranked MSO formula is *translated* into an MSO formula over the
//! binary encoding: the unranked parent–child relation `E` becomes
//! "left child, then a chain of right children", sibling order becomes
//! "a nonempty chain of right children", and quantifiers are relativized to
//! the non-`nil` nodes. The ranked compiler (Theorem 2.8's construction)
//! then produces the automaton. This mirrors how the paper transfers
//! results between Sections 4 and 5, with the encoding in the role of the
//! `≡ᵏ`-type bookkeeping.

use qa_base::{Error, Result, Symbol};
use qa_core::ranked::Dbta;
use qa_trees::{NodeId, Tree};

use crate::ast::Formula;
use crate::compile_ranked;

/// The alphabet size of the encoded world: Σ plus the `nil` padding symbol
/// (`nil` is the last symbol, index `sigma`).
pub fn encoded_alphabet_len(sigma: usize) -> usize {
    sigma + 1
}

/// The `nil` symbol for a Σ of the given size.
pub fn nil_symbol(sigma: usize) -> Symbol {
    Symbol::from_index(sigma)
}

/// `¬label(x, nil)`.
fn nonnil(x: &str, sigma: usize) -> Formula {
    Formula::Label(x.to_string(), nil_symbol(sigma)).not()
}

/// Translate an unranked-tree formula into an encoded-binary-tree formula.
///
/// The navigation atoms `FirstChild`/`SecondChild`/`Chain2` compile to
/// 3-state automata, so each unranked `edge`/`<` costs only one extra
/// first-order variable. `depth` disambiguates the helper variables.
///
/// Errors on the encoding-level navigation atoms: they are not part of the
/// unranked surface language, and formulas are caller-supplied, so this is
/// a domain error rather than a programming bug.
fn translate(f: &Formula, sigma: usize, depth: usize) -> Result<Formula> {
    Ok(match f {
        Formula::True | Formula::False | Formula::Eq(_, _) | Formula::In(_, _) => f.clone(),
        Formula::Label(x, a) => Formula::Label(x.clone(), *a),
        Formula::FirstChild(_, _) | Formula::SecondChild(_, _) | Formula::Chain2(_, _) => {
            return Err(Error::domain(
                "encoding navigation atoms (first_child/second_child/chain2) \
                 are not part of the unranked surface language",
            ))
        }
        Formula::Edge(x, y) => {
            // unranked E(x, y): y is in the second-child chain from x's
            // first (encoded left) child
            let w = format!("#e{depth}");
            Formula::exists(
                w.clone(),
                Formula::FirstChild(x.clone(), w.clone()).and(Formula::Chain2(w, y.clone())),
            )
        }
        Formula::Less(x, y) => {
            // sibling order: y in the nonempty second-child chain from x
            let w = format!("#s{depth}");
            Formula::exists(
                w.clone(),
                Formula::SecondChild(x.clone(), w.clone()).and(Formula::Chain2(w, y.clone())),
            )
        }
        Formula::Not(p) => translate(p, sigma, depth)?.not(),
        Formula::And(p, q) => translate(p, sigma, depth + 1)?.and(translate(q, sigma, depth + 2)?),
        Formula::Or(p, q) => translate(p, sigma, depth + 1)?.or(translate(q, sigma, depth + 2)?),
        Formula::Exists(v, p) => Formula::exists(
            v.clone(),
            nonnil(v, sigma).and(translate(p, sigma, depth + 1)?),
        ),
        Formula::Forall(v, p) => Formula::forall(
            v.clone(),
            nonnil(v, sigma).implies(translate(p, sigma, depth + 1)?),
        ),
        Formula::ExistsSet(v, p) => {
            let u = format!("#m{depth}");
            Formula::exists_set(
                v.clone(),
                Formula::forall(
                    u.clone(),
                    Formula::In(u.clone(), v.clone()).implies(nonnil(&u, sigma)),
                )
                .and(translate(p, sigma, depth + 1)?),
            )
        }
        Formula::ForallSet(v, p) => {
            let u = format!("#m{depth}");
            Formula::forall_set(
                v.clone(),
                Formula::forall(
                    u.clone(),
                    Formula::In(u.clone(), v.clone()).implies(nonnil(&u, sigma)),
                )
                .implies(translate(p, sigma, depth + 1)?),
            )
        }
    })
}

/// Compile an unranked-tree MSO sentence to a DBTAʳ over the encoded
/// alphabet `(Σ ⊎ {nil}) × {}` (rank 2); test trees with
/// [`accepts_unranked`].
pub fn compile_sentence(f: &Formula, sigma: usize) -> Result<Dbta> {
    let translated = translate(f, sigma, 0)?;
    compile_ranked::compile_sentence(&translated, encoded_alphabet_len(sigma), 2)
}

/// Compile a unary unranked query `φ(x)` to a DBTAʳ over the encoded
/// marked alphabet; evaluate with [`crate::query_eval::eval_unary_unranked`].
pub fn compile_unary(f: &Formula, var: &str, sigma: usize) -> Result<Dbta> {
    let translated = translate(f, sigma, 0)?;
    // relativize the free variable as well
    let relativized = nonnil(var, sigma).and(translated);
    compile_ranked::compile_unary(&relativized, var, encoded_alphabet_len(sigma), 2)
}

/// Whether the compiled sentence automaton accepts the unranked tree.
pub fn accepts_unranked(d: &Dbta, tree: &Tree, sigma: usize) -> bool {
    let enc = qa_trees::fcns::encode(tree, nil_symbol(sigma));
    d.accepts(&enc)
}

/// Evaluate a compiled unary automaton on an unranked tree node by marking
/// its encoded counterpart (the naive per-node strategy).
pub fn selects_unranked(d: &Dbta, tree: &Tree, node: NodeId, sigma: usize) -> bool {
    let (enc, map) = qa_trees::fcns::encode_with_map(tree, nil_symbol(sigma));
    let enc_node = map
        .iter()
        .position(|&s| s == Some(node))
        .expect("every source node has an encoded counterpart");
    let marked = compile_ranked::mark_tree(
        &enc,
        NodeId::from_index(enc_node),
        encoded_alphabet_len(sigma),
    );
    d.accepts(&marked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{check, query, Structure};
    use crate::parser::parse;
    use qa_base::rng::StdRng;
    use qa_base::Alphabet;

    fn random_unranked(sigma: usize, count: usize, seed: u64) -> Vec<Tree> {
        let labels: Vec<Symbol> = (0..sigma).map(Symbol::from_index).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for n in [1usize, 2, 4, 6] {
            for _ in 0..count {
                out.push(qa_trees::generate::random(&mut rng, &labels, n, None));
            }
        }
        out
    }

    fn agree_sentence(src: &str, sigma_names: &[&str], seed: u64) {
        let mut a = Alphabet::from_names(sigma_names.to_vec());
        let sigma = a.len();
        let f = parse(src, &mut a).unwrap();
        let d = compile_sentence(&f, sigma).unwrap();
        for t in random_unranked(sigma, 3, seed) {
            let naive = check(Structure::Tree(&t), &f).unwrap();
            assert_eq!(
                accepts_unranked(&d, &t, sigma),
                naive,
                "{src} on {}",
                t.render(&a)
            );
        }
    }

    #[test]
    fn label_queries_transfer() {
        agree_sentence("ex x. label(x, b)", &["a", "b"], 11);
        agree_sentence("all x. (leaf(x) -> label(x, a))", &["a", "b"], 12);
    }

    #[test]
    fn unranked_edge_is_true_parenthood() {
        agree_sentence(
            "ex x. ex y. (edge(x, y) & label(x, a) & label(y, b))",
            &["a", "b"],
            13,
        );
        // E is not the encoded edge: a node and its (unranked) second child
        agree_sentence(
            "ex x. ex y. ex z. (edge(x, y) & edge(x, z) & y < z)",
            &["a", "b"],
            14,
        );
    }

    #[test]
    fn sibling_order_transfers() {
        agree_sentence(
            "ex x. ex y. (x < y & label(x, b) & label(y, b))",
            &["a", "b"],
            15,
        );
    }

    #[test]
    fn root_leaf_on_unranked() {
        // NB: root(x)/leaf(x) desugar to edge-based forms, which translate.
        agree_sentence("ex x. (root(x) & label(x, b))", &["a", "b"], 16);
        agree_sentence("all x. (label(x, b) -> leaf(x))", &["a", "b"], 17);
    }

    #[test]
    fn encoding_atoms_are_a_domain_error_not_a_panic() {
        let f = Formula::exists(
            "x",
            Formula::exists("y", Formula::FirstChild("x".to_string(), "y".to_string())),
        );
        assert!(matches!(
            compile_sentence(&f, 2),
            Err(qa_base::Error::Domain { .. })
        ));
        assert!(matches!(
            compile_unary(&f, "x", 2),
            Err(qa_base::Error::Domain { .. })
        ));
    }

    #[test]
    fn unary_query_on_unranked_trees() {
        let mut a = Alphabet::from_names(["0", "1"]);
        let sigma = a.len();
        // Proposition 5.10's query: 1-labeled leaves with no 1-labeled node
        // among their left siblings.
        let src = "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))";
        let f = parse(src, &mut a).unwrap();
        let d = compile_unary(&f, "v", sigma).unwrap();
        for t in random_unranked(sigma, 3, 18) {
            let naive = query(Structure::Tree(&t), &f, "v").unwrap();
            for v in t.nodes() {
                assert_eq!(
                    selects_unranked(&d, &t, v, sigma),
                    naive.contains(&v.index()),
                    "node {v:?} of {}",
                    t.render(&a)
                );
            }
        }
    }

    #[test]
    fn unary_query_matches_example_5_14_sqa() {
        let a = Alphabet::from_names(["0", "1"]);
        let sigma = a.len();
        let qa = qa_core::unranked::query::example_5_14(&a);
        let mut a2 = a.clone();
        let src = "label(v, 1) & leaf(v) & !(ex w. (w < v & label(w, 1)))";
        let f = parse(src, &mut a2).unwrap();
        let d = compile_unary(&f, "v", sigma).unwrap();
        for t in random_unranked(sigma, 3, 19) {
            let selected = qa.query(&t).unwrap();
            for v in t.nodes() {
                assert_eq!(
                    selects_unranked(&d, &t, v, sigma),
                    selected.contains(&v),
                    "node {v:?} of {}",
                    t.render(&a)
                );
            }
        }
    }
}
