//! First-child/next-sibling encoding: unranked ⇄ binary ranked trees.
//!
//! `encode` maps an unranked Σ-tree to a binary tree over `Σ ⊎ {nil}` where
//! every Σ-node has exactly two children: its first child's encoding (or a
//! `nil` leaf) on the left, and its next sibling's encoding (or `nil`) on
//! the right. This classical bijection lets the unranked automata of
//! Section 5 borrow closure properties (most importantly complementation,
//! which needs determinization) from the ranked automata of Section 4.

use qa_base::Symbol;

use crate::{NodeId, Tree};

/// Encode `t` into its binary first-child/next-sibling form, using `nil` as
/// the padding leaf label (must not occur in `t`). Iterative.
pub fn encode(t: &Tree, nil: Symbol) -> Tree {
    encode_with_map(t, nil).0
}

/// [`encode`], also returning the correspondence between encoded and source
/// nodes: `map[encoded.index()] = Some(source)` for Σ-nodes, `None` for the
/// `nil` padding leaves.
pub fn encode_with_map(t: &Tree, nil: Symbol) -> (Tree, Vec<Option<NodeId>>) {
    let mut out = Tree::leaf(t.label(t.root()));
    let mut map: Vec<Option<NodeId>> = vec![Some(t.root())];
    let record = |map: &mut Vec<Option<NodeId>>, enc: NodeId, src: Option<NodeId>| {
        if map.len() <= enc.index() {
            map.resize(enc.index() + 1, None);
        }
        map[enc.index()] = src;
    };
    // stack of (source node, encoded node) whose two children remain to add
    let mut stack = vec![(t.root(), out.root())];
    while let Some((src, dst)) = stack.pop() {
        debug_assert!(t.label(src) != nil, "nil label occurs in the source tree");
        // left = first child
        match t.children(src).first() {
            Some(&fc) => {
                let d = out.add_child(dst, t.label(fc));
                record(&mut map, d, Some(fc));
                stack.push((fc, d));
            }
            None => {
                let d = out.add_child(dst, nil);
                record(&mut map, d, None);
            }
        }
        // right = next sibling
        match next_sibling(t, src) {
            Some(ns) => {
                let d = out.add_child(dst, t.label(ns));
                record(&mut map, d, Some(ns));
                stack.push((ns, d));
            }
            None => {
                let d = out.add_child(dst, nil);
                record(&mut map, d, None);
            }
        }
    }
    (out, map)
}

/// Decode a binary first-child/next-sibling tree back into unranked form.
/// Inverse of [`encode`]. Iterative.
///
/// Panics if `enc` is not a well-formed encoding (every non-`nil` node must
/// have exactly two children; the root must not be `nil` and must have a
/// `nil` right child).
pub fn decode(enc: &Tree, nil: Symbol) -> Tree {
    assert_ne!(enc.label(enc.root()), nil, "root is nil");
    let mut out = Tree::leaf(enc.label(enc.root()));
    // stack of (encoded node, decoded parent of its first-child chain,
    //           decoded node it corresponds to)
    let mut stack = vec![(enc.root(), out.root())];
    while let Some((src, dst)) = stack.pop() {
        assert_eq!(enc.arity(src), 2, "non-nil node without two children");
        let left = enc.child(src, 0);
        let right = enc.child(src, 1);
        // right = next sibling of src: belongs under dst's parent
        if enc.label(right) != nil {
            let parent = out.parent(dst).expect("sibling of a non-root");
            let d = out.add_child(parent, enc.label(right));
            stack.push((right, d));
        }
        // left = first child of src
        if enc.label(left) != nil {
            let d = out.add_child(dst, enc.label(left));
            stack.push((left, d));
        }
    }
    out
}

/// The next sibling of `v` in `t`, if any.
pub fn next_sibling(t: &Tree, v: NodeId) -> Option<NodeId> {
    let p = t.parent(v)?;
    let idx = t.child_index(v);
    t.children(p).get(idx + 1).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_base::rng::StdRng;
    use qa_base::Alphabet;

    fn setup() -> (Alphabet, Symbol) {
        let mut a = Alphabet::new();
        a.intern("a");
        a.intern("b");
        a.intern("c");
        let nil = a.intern("#nil");
        (a, nil)
    }

    #[test]
    fn encode_shape() {
        let (mut a, nil) = setup();
        let t = crate::sexpr::from_sexpr("(a b c)", &mut a).unwrap();
        let enc = encode(&t, nil);
        // a(b(nil, c(nil, nil)), nil)
        assert_eq!(enc.render(&a), "(a (b #nil (c #nil #nil)) #nil)");
    }

    #[test]
    fn decode_inverts_encode() {
        let (mut a, nil) = setup();
        for s in [
            "a",
            "(a b)",
            "(a b c)",
            "(a (b c) (c a b) b)",
            "(a (a (a a a a) a) (a a))",
        ] {
            let t = crate::sexpr::from_sexpr(s, &mut a).unwrap();
            let back = decode(&encode(&t, nil), nil);
            assert_eq!(back, t, "{s}");
        }
    }

    #[test]
    fn round_trip_random_trees() {
        let (a, nil) = setup();
        let labels: Vec<Symbol> = (0..3).map(Symbol::from_index).collect();
        let mut rng = StdRng::seed_from_u64(99);
        for n in [1usize, 2, 5, 17, 60] {
            let t = crate::generate::random(&mut rng, &labels, n, None);
            let enc = encode(&t, nil);
            assert!(enc.is_ranked(2));
            // every non-nil node has exactly 2 children; nil nodes are leaves
            for v in enc.nodes() {
                if enc.label(v) == nil {
                    assert!(enc.is_leaf(v));
                } else {
                    assert_eq!(enc.arity(v), 2);
                }
            }
            assert_eq!(decode(&enc, nil), t);
            let _ = a;
        }
    }

    #[test]
    fn encoded_size_is_2n_plus_1() {
        let (mut a, nil) = setup();
        let t = crate::sexpr::from_sexpr("(a (b c) b)", &mut a).unwrap();
        let enc = encode(&t, nil);
        assert_eq!(enc.num_nodes(), 2 * t.num_nodes() + 1);
    }

    #[test]
    fn encode_with_map_is_a_bijection_on_sigma_nodes() {
        let (mut a, nil) = setup();
        let t = crate::sexpr::from_sexpr("(a (b c) b)", &mut a).unwrap();
        let (enc, map) = encode_with_map(&t, nil);
        assert_eq!(map.len(), enc.num_nodes());
        let mut sources: Vec<NodeId> = map.iter().flatten().copied().collect();
        sources.sort_unstable();
        let mut all: Vec<NodeId> = t.nodes().collect();
        all.sort_unstable();
        assert_eq!(sources, all);
        for v in enc.nodes() {
            match map[v.index()] {
                Some(src) => assert_eq!(enc.label(v), t.label(src)),
                None => assert_eq!(enc.label(v), nil),
            }
        }
    }

    #[test]
    fn next_sibling_navigation() {
        let (mut a, _) = setup();
        let t = crate::sexpr::from_sexpr("(a b c)", &mut a).unwrap();
        let b = t.child(t.root(), 0);
        let c = t.child(t.root(), 1);
        assert_eq!(next_sibling(&t, b), Some(c));
        assert_eq!(next_sibling(&t, c), None);
        assert_eq!(next_sibling(&t, t.root()), None);
    }
}
