//! [`CountingAlloc`]: an opt-in counting wrapper around the system
//! allocator, plus the process-wide [`HeapStats`] it feeds.
//!
//! The wrapper is *installed* by binaries, not by this crate:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: qa_pulse::CountingAlloc = qa_pulse::CountingAlloc::new();
//! ```
//!
//! `qa-fleet` and `bench_obs` gate that line behind an `alloc-count`
//! feature, so the default build pays nothing: the statics exist but are
//! never written, every gauge reads zero, and the system allocator is used
//! directly. When installed, each allocation costs four relaxed atomic
//! updates — cheap enough to leave on for fleet runs, and the only way to
//! get heap figures without an external profiler in a zero-dependency
//! workspace.
//!
//! The tallies answer the operator questions: how much is live right now
//! ([`HeapStats::live_bytes`]), how big did the footprint get
//! ([`HeapStats::peak_bytes`], an RSS proxy), and how allocation-happy is
//! the workload ([`HeapStats::allocs`] / [`HeapStats::allocated_bytes`]).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

#[inline]
fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn on_free(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    FREES.fetch_add(1, Ordering::Relaxed);
}

/// Counting [`GlobalAlloc`] delegating to [`System`].
///
/// Zero-sized; all state lives in process-wide atomics read by
/// [`HeapStats::snapshot`]. Install with `#[global_allocator]` (see the
/// module docs) — typically behind a cargo feature so the default build
/// keeps the untouched system allocator.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// The (stateless) allocator value for a `static` item.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: defers entirely to `System` for memory management; the wrapper
// only updates tallies and never inspects or alters the returned blocks.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_free(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Plain-data snapshot of the process heap tallies.
///
/// All zeros unless a [`CountingAlloc`] is installed as the global
/// allocator ([`HeapStats::enabled`] distinguishes "nothing installed"
/// from "nothing allocated yet").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` — an RSS proxy.
    pub peak_bytes: u64,
    /// Total bytes ever allocated (monotone).
    pub allocated_bytes: u64,
    /// Total allocation calls (monotone).
    pub allocs: u64,
    /// Total deallocation calls (monotone).
    pub frees: u64,
}

impl HeapStats {
    /// Read the current tallies (relaxed loads; consistent enough for
    /// gauges).
    pub fn snapshot() -> HeapStats {
        HeapStats {
            live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
            peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
            allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
            allocs: ALLOCS.load(Ordering::Relaxed),
            frees: FREES.load(Ordering::Relaxed),
        }
    }

    /// Whether a [`CountingAlloc`] has observed any allocation — `false`
    /// means the counting allocator is not installed (or the process has
    /// somehow yet to allocate, which no real Rust process manages).
    pub fn enabled(&self) -> bool {
        self.allocs != 0
    }
}

/// Total bytes ever allocated — the monotone clock the
/// [`SpanProfiler`](crate::SpanProfiler) reads at phase boundaries to
/// attribute allocation volume to phases. Zero when no [`CountingAlloc`]
/// is installed, making the per-phase deltas zero at zero cost.
#[inline]
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does NOT install the allocator, so these exercise
    // the tally arithmetic directly; crates/pulse/tests/alloc.rs covers
    // the installed path end-to-end.
    #[test]
    fn tallies_add_up() {
        let before = HeapStats::snapshot();
        on_alloc(100);
        on_alloc(50);
        on_free(100);
        let after = HeapStats::snapshot();
        assert_eq!(after.live_bytes - before.live_bytes, 50);
        assert_eq!(after.allocated_bytes - before.allocated_bytes, 150);
        assert_eq!(after.allocs - before.allocs, 2);
        assert_eq!(after.frees - before.frees, 1);
        assert!(after.peak_bytes >= before.live_bytes + 150);
        assert!(after.enabled());
        on_free(50); // restore live balance for other tests
    }
}
