//! Standard-format exports: Chrome trace-event JSON (Perfetto-loadable)
//! for [`RunTrace`] phase timings, and Prometheus text exposition for
//! [`Metrics`] registries.

use qa_obs::json::{self, ParseError, Value};
use qa_obs::{Counter, Metrics, RunTrace, Series};

/// Serialize a trace's phase spans to Chrome trace-event JSON.
///
/// Each completed phase becomes one complete (`"ph": "X"`) event with
/// microsecond `ts`/`dur` on a `tid` equal to its nesting depth + 1, and
/// the trace's counters ride along as one counter (`"ph": "C"`) event.
/// Metadata (`"ph": "M"`) events name the process and each depth track,
/// so Perfetto labels them instead of showing bare pids.
/// Load the output in <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn chrome_trace(trace: &RunTrace) -> String {
    let parsed = json::parse(&trace.to_json()).expect("RunTrace emits valid JSON");
    chrome_from_trace_json(&parsed).expect("RunTrace emits a well-shaped report")
}

/// [`chrome_trace`] from an already-parsed `RunTrace::to_json` document —
/// the entry point the `qa-trace` CLI uses on recorded trace files.
pub fn chrome_from_trace_json(trace: &Value) -> Result<String, String> {
    let phases = trace
        .get("phases")
        .and_then(Value::as_arr)
        .ok_or("trace report has no \"phases\" array")?;
    let mut events: Vec<String> = Vec::with_capacity(phases.len() + 4);
    // Metadata first: name the process and every depth track, so viewers
    // show "qa-run" and "depth 0/1/…" instead of bare pid/tid numbers.
    events.push(metadata_event("process_name", 1, None, "qa-run"));
    let mut depths: Vec<u64> = phases
        .iter()
        .map(|p| p.get("depth").and_then(Value::as_u64).unwrap_or(0))
        .collect();
    depths.sort_unstable();
    depths.dedup();
    for d in depths {
        events.push(metadata_event(
            "thread_name",
            1,
            Some(d + 1),
            &format!("depth {d}"),
        ));
    }
    for p in phases {
        let name = p
            .get("name")
            .and_then(Value::as_str)
            .ok_or("phase without a name")?;
        let depth = p.get("depth").and_then(Value::as_u64).unwrap_or(0);
        let start_ms = p.get("start_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let dur_ms = p.get("ms").and_then(Value::as_f64).unwrap_or(0.0);
        events.push(json::object(|w| {
            w.field_str("name", name);
            w.field_str("cat", "phase");
            w.field_str("ph", "X");
            w.field_f64("ts", start_ms * 1e3);
            w.field_f64("dur", dur_ms * 1e3);
            w.field_u64("pid", 1);
            w.field_u64("tid", depth + 1);
        }));
    }
    if let Some(counters) = trace.get("counters").and_then(Value::as_obj) {
        if !counters.is_empty() {
            events.push(json::object(|w| {
                w.field_str("name", "counters");
                w.field_str("ph", "C");
                w.field_u64("ts", 0);
                w.field_u64("pid", 1);
                w.field_raw(
                    "args",
                    &json::object(|aw| {
                        for (k, v) in counters {
                            if let Some(n) = v.as_u64() {
                                aw.field_u64(k, n);
                            }
                        }
                    }),
                );
            }));
        }
    }
    Ok(json::object(|w| {
        w.field_raw("traceEvents", &json::array(events));
        w.field_str("displayTimeUnit", "ms");
    }))
}

/// One Chrome metadata (`"ph": "M"`) event: `process_name` /
/// `thread_name` entries that make viewers label tracks.
fn metadata_event(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> String {
    json::object(|w| {
        w.field_str("name", kind);
        w.field_str("ph", "M");
        w.field_u64("pid", pid);
        if let Some(tid) = tid {
            w.field_u64("tid", tid);
        }
        w.field_raw("args", &json::object(|aw| aw.field_str("name", name)));
    })
}

/// Upper bound (inclusive, integer-valued) of histogram bucket `i` under
/// qa-obs's power-of-two scheme: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`.
fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)) - 1
    }
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the exposition format defines).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a metrics registry to the Prometheus text exposition format.
///
/// Counters become `<prefix>_<name>_total` counters; every non-empty series
/// becomes a `<prefix>_<name>` histogram with cumulative power-of-two `le`
/// buckets; every [`Metrics::set_info`] entry becomes a constant-`1` info
/// gauge under its own (unprefixed) name with labels sorted by key.
/// `prefix` is typically `"qa"`.
pub fn prometheus_text(metrics: &Metrics, prefix: &str) -> String {
    let mut out = String::new();
    for c in Counter::ALL {
        let name = format!("{prefix}_{}_total", c.name());
        out.push_str(&format!(
            "# TYPE {name} counter\n{name} {}\n",
            metrics.get(c)
        ));
    }
    for s in Series::ALL {
        let snap = metrics.histogram(s);
        if snap.count == 0 {
            continue;
        }
        let name = format!("{prefix}_{}", s.name());
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let used = snap.buckets.len() - snap.buckets.iter().rev().take_while(|&&b| b == 0).count();
        let mut cumulative = 0u64;
        for (i, &b) in snap.buckets[..used].iter().enumerate() {
            cumulative += b;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_le(i)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        out.push_str(&format!("{name}_sum {}\n", snap.sum));
        out.push_str(&format!("{name}_count {}\n", snap.count));
    }
    for (name, labels) in metrics.infos() {
        out.push_str(&format!("# TYPE {name} gauge\n{name}{{"));
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
        }
        out.push_str("} 1\n");
    }
    out
}

/// [`prometheus_text`] from a parsed `Metrics::to_json` document — the
/// entry point the `qa-trace` CLI uses on recorded metrics files. Only the
/// counters and the histogram totals survive the JSON round trip, so the
/// bucket lines are reconstructed from the serialized bucket array.
pub fn prometheus_from_metrics_json(report: &Value, prefix: &str) -> Result<String, String> {
    let counters = report
        .get("counters")
        .and_then(Value::as_obj)
        .ok_or("metrics report has no \"counters\" object")?;
    let mut out = String::new();
    for (k, v) in counters {
        let n = v.as_u64().ok_or("non-integer counter")?;
        let name = format!("{prefix}_{k}_total");
        out.push_str(&format!("# TYPE {name} counter\n{name} {n}\n"));
    }
    let series = report
        .get("series")
        .and_then(Value::as_obj)
        .ok_or("metrics report has no \"series\" object")?;
    for (k, h) in series {
        let name = format!("{prefix}_{k}");
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let buckets = h.get("buckets").and_then(Value::as_arr).unwrap_or(&[]);
        let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
        let sum = h.get("sum").and_then(Value::as_u64).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            cumulative += b.as_u64().unwrap_or(0);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_le(i)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {count}\n"));
    }
    Ok(out)
}

/// Convenience: parse a JSON document, mapping the error to a string (the
/// CLI's error currency).
pub fn parse_json(text: &str) -> Result<Value, String> {
    json::parse(text).map_err(|e: ParseError| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_obs::Observer;

    #[test]
    fn chrome_export_contains_phase_events() {
        let mut t = RunTrace::new();
        t.phase_start("run");
        t.phase_start("inner");
        t.phase_end("inner");
        t.phase_end("run");
        t.count(Counter::Steps, 9);
        let out = chrome_trace(&t);
        let v = parse_json(&out).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        // 1 process_name + 2 thread_names + two phases + one counter event
        assert_eq!(events.len(), 6);
        assert_eq!(
            events[0].get("name").and_then(Value::as_str),
            Some("process_name")
        );
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("M"));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("qa-run")
        );
        assert_eq!(
            events[1].get("name").and_then(Value::as_str),
            Some("thread_name")
        );
        assert_eq!(events[1].get("tid").and_then(Value::as_u64), Some(1));
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("depth 0")
        );
        assert_eq!(events[2].get("tid").and_then(Value::as_u64), Some(2));
        assert_eq!(events[3].get("name").and_then(Value::as_str), Some("inner"));
        assert_eq!(events[3].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(events[3].get("tid").and_then(Value::as_u64), Some(2));
        assert_eq!(events[4].get("name").and_then(Value::as_str), Some("run"));
        assert_eq!(events[4].get("tid").and_then(Value::as_u64), Some(1));
        let args = events[5].get("args").unwrap();
        assert_eq!(args.get("steps").and_then(Value::as_u64), Some(9));
    }

    #[test]
    fn bucket_le_matches_bucket_index() {
        // bucket_le(i) must be the largest integer mapped to bucket i.
        use qa_obs::metrics::bucket_index;
        for i in 0..20usize {
            assert_eq!(bucket_index(bucket_le(i)), i);
            assert_eq!(bucket_index(bucket_le(i) + 1), i + 1);
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = Metrics::new();
        m.count(Counter::Steps, 14);
        m.record(Series::TraceLength, 0);
        m.record(Series::TraceLength, 3);
        m.record(Series::TraceLength, 3);
        let text = prometheus_text(&m, "qa");
        assert!(text.contains("# TYPE qa_steps_total counter\nqa_steps_total 14\n"));
        assert!(
            text.contains("qa_head_reversals_total 0\n"),
            "zero counters exposed"
        );
        assert!(text.contains("# TYPE qa_trace_length histogram\n"));
        // cumulative buckets: le=0 → 1 (the 0), le=1 → 1, le=3 → 3
        assert!(text.contains("qa_trace_length_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("qa_trace_length_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("qa_trace_length_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("qa_trace_length_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("qa_trace_length_sum 6\n"));
        assert!(text.contains("qa_trace_length_count 3\n"));
        // empty series omitted
        assert!(!text.contains("qa_run_steps_bucket"));
    }

    #[test]
    fn prometheus_info_metrics_render_as_labeled_gauges() {
        let m = Metrics::new();
        m.set_info(
            "qa_fleet_worker_info",
            [
                ("worker_id".to_string(), "w1".to_string()),
                ("shard".to_string(), "1/3".to_string()),
                ("run_id".to_string(), "r\"x\"".to_string()),
            ],
        );
        let text = prometheus_text(&m, "qa");
        assert!(
            text.contains(
                "# TYPE qa_fleet_worker_info gauge\n\
                 qa_fleet_worker_info{run_id=\"r\\\"x\\\"\",shard=\"1/3\",worker_id=\"w1\"} 1\n"
            ),
            "{text}"
        );
    }

    #[test]
    fn prometheus_from_json_round_trips_totals() {
        let m = Metrics::new();
        m.count(Counter::Steps, 5);
        m.record(Series::RunSteps, 4);
        let direct = prometheus_text(&m, "qa");
        let via_json =
            prometheus_from_metrics_json(&parse_json(&m.to_json()).unwrap(), "qa").unwrap();
        // the JSON path omits zero counters; every line it produces must
        // appear verbatim in the direct exposition
        for line in via_json.lines() {
            assert!(direct.contains(line), "missing line: {line}");
        }
        assert!(via_json.contains("qa_run_steps_bucket{le=\"7\"} 1\n"));
    }
}
