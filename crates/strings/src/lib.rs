//! # qa-strings
//!
//! Classical one-way string automata and regular-language machinery — the
//! substrate Sections 2.2 and 5 of *Query Automata* (Neven & Schwentick)
//! build on:
//!
//! - [`Nfa`] / [`Dfa`]: nondeterministic and deterministic finite automata
//!   over an interned [`qa_base::Alphabet`], with ε-transitions, subset
//!   determinization, product/boolean operations, emptiness, containment and
//!   equivalence.
//! - [`minimize`]: DFA minimization (Moore partition refinement) used to keep
//!   compiled MSO automata small.
//! - [`regex`]: regular-expression AST, two parsers (character-level and
//!   token-level) and the Thompson construction.
//! - [`slender`]: *slender* languages of the Shallit form `x y* z` — finite
//!   unions with at most one member per length — which represent the
//!   down-transition languages `L↓(q, a)` of two-way unranked tree automata
//!   (Definition 5.7 of the paper).

pub mod dfa;
pub mod kleene;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod regex;
pub mod slender;

pub use dfa::Dfa;
pub use kleene::{dfa_to_regex, nfa_to_regex};
pub use nfa::Nfa;
pub use regex::{parse_chars, parse_tokens, Regex};
pub use slender::{SlenderLang, XyzPattern};

qa_base::define_id!(pub StateId, "q");
