//! Naive MSO model checking — the semantic ground truth.
//!
//! Direct recursive evaluation over the structure: first-order quantifiers
//! enumerate the domain, set quantifiers enumerate all `2^n` subsets. Only
//! usable on small structures (the evaluator refuses set quantification
//! over domains larger than [`MAX_SET_DOMAIN`]), which is exactly what the
//! property tests need: every compiled automaton is checked against this
//! semantics on small random inputs.

use std::collections::HashMap;

use qa_base::{Error, Result, Symbol};
use qa_trees::Tree;

use crate::ast::{Formula, Var};

/// Largest domain size on which set quantifiers are evaluated naively.
pub const MAX_SET_DOMAIN: usize = 16;

/// A structure an MSO formula can be evaluated on.
#[derive(Clone, Copy, Debug)]
pub enum Structure<'a> {
    /// A string: domain = positions `0..len`; `edge` is successor, `<` the
    /// position order.
    Word(&'a [Symbol]),
    /// An ordered tree: domain = nodes; `edge` is parent–child, `<` the
    /// sibling order (only siblings are comparable, as in Section 2.3).
    Tree(&'a Tree),
}

impl<'a> Structure<'a> {
    /// Domain size.
    pub fn len(&self) -> usize {
        match self {
            Structure::Word(w) => w.len(),
            Structure::Tree(t) => t.num_nodes(),
        }
    }

    /// Whether the domain is empty (only possible for words).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn label(&self, e: usize) -> Symbol {
        match self {
            Structure::Word(w) => w[e],
            Structure::Tree(t) => t.label(qa_trees::NodeId::from_index(e)),
        }
    }

    fn edge(&self, x: usize, y: usize) -> bool {
        match self {
            Structure::Word(_) => y == x + 1,
            Structure::Tree(t) => {
                t.parent(qa_trees::NodeId::from_index(y)) == Some(qa_trees::NodeId::from_index(x))
            }
        }
    }

    fn first_child(&self, x: usize, y: usize) -> bool {
        match self {
            Structure::Word(_) => false,
            Structure::Tree(t) => {
                t.children(qa_trees::NodeId::from_index(x)).first()
                    == Some(&qa_trees::NodeId::from_index(y))
            }
        }
    }

    fn second_child(&self, x: usize, y: usize) -> bool {
        match self {
            Structure::Word(_) => false,
            Structure::Tree(t) => {
                t.children(qa_trees::NodeId::from_index(x)).get(1)
                    == Some(&qa_trees::NodeId::from_index(y))
            }
        }
    }

    fn chain2(&self, x: usize, y: usize) -> bool {
        match self {
            Structure::Word(_) => x == y,
            Structure::Tree(t) => {
                let mut cur = qa_trees::NodeId::from_index(x);
                let target = qa_trees::NodeId::from_index(y);
                loop {
                    if cur == target {
                        return true;
                    }
                    match t.children(cur).get(1) {
                        Some(&c) => cur = c,
                        None => return false,
                    }
                }
            }
        }
    }

    fn less(&self, x: usize, y: usize) -> bool {
        match self {
            Structure::Word(_) => x < y,
            Structure::Tree(t) => {
                let (nx, ny) = (
                    qa_trees::NodeId::from_index(x),
                    qa_trees::NodeId::from_index(y),
                );
                t.parent(nx).is_some()
                    && t.parent(nx) == t.parent(ny)
                    && t.child_index(nx) < t.child_index(ny)
            }
        }
    }
}

/// A variable assignment.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    firsts: HashMap<Var, usize>,
    sets: HashMap<Var, Vec<bool>>,
}

impl Assignment {
    /// Empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a first-order variable to a domain element.
    pub fn bind(&mut self, var: impl Into<Var>, element: usize) -> &mut Self {
        self.firsts.insert(var.into(), element);
        self
    }

    /// Bind a set variable to a set of elements.
    pub fn bind_set(
        &mut self,
        var: impl Into<Var>,
        elements: &[usize],
        domain: usize,
    ) -> &mut Self {
        let mut mask = vec![false; domain];
        for &e in elements {
            mask[e] = true;
        }
        self.sets.insert(var.into(), mask);
        self
    }
}

/// Evaluate `formula` on `structure` under `assignment`.
///
/// Errors on unbound variables and on set quantification over domains
/// larger than [`MAX_SET_DOMAIN`].
pub fn eval(structure: Structure<'_>, formula: &Formula, assignment: &Assignment) -> Result<bool> {
    let mut env = assignment.clone();
    eval_inner(structure, formula, &mut env)
}

/// Evaluate a sentence (no free variables).
pub fn check(structure: Structure<'_>, formula: &Formula) -> Result<bool> {
    eval(structure, formula, &Assignment::new())
}

/// Evaluate a unary query `φ(x)`: all elements `e` with
/// `structure ⊨ φ[x ↦ e]`.
pub fn query(structure: Structure<'_>, formula: &Formula, var: &str) -> Result<Vec<usize>> {
    let mut out = Vec::new();
    for e in 0..structure.len() {
        let mut env = Assignment::new();
        env.bind(var, e);
        if eval(structure, formula, &env)? {
            out.push(e);
        }
    }
    Ok(out)
}

fn eval_inner(st: Structure<'_>, f: &Formula, env: &mut Assignment) -> Result<bool> {
    let first = |env: &Assignment, v: &Var| -> Result<usize> {
        env.firsts
            .get(v)
            .copied()
            .ok_or_else(|| Error::domain(format!("unbound first-order variable `{v}`")))
    };
    Ok(match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Label(x, s) => st.label(first(env, x)?) == *s,
        Formula::Edge(x, y) => st.edge(first(env, x)?, first(env, y)?),
        Formula::Less(x, y) => st.less(first(env, x)?, first(env, y)?),
        Formula::FirstChild(x, y) => st.first_child(first(env, x)?, first(env, y)?),
        Formula::SecondChild(x, y) => st.second_child(first(env, x)?, first(env, y)?),
        Formula::Chain2(x, y) => st.chain2(first(env, x)?, first(env, y)?),
        Formula::Eq(x, y) => first(env, x)? == first(env, y)?,
        Formula::In(x, s) => {
            let e = first(env, x)?;
            let mask = env
                .sets
                .get(s)
                .ok_or_else(|| Error::domain(format!("unbound set variable `{s}`")))?;
            mask.get(e).copied().unwrap_or(false)
        }
        Formula::Not(p) => !eval_inner(st, p, env)?,
        Formula::And(a, b) => eval_inner(st, a, env)? && eval_inner(st, b, env)?,
        Formula::Or(a, b) => eval_inner(st, a, env)? || eval_inner(st, b, env)?,
        Formula::Exists(v, p) => {
            let saved = env.firsts.get(v).copied();
            let mut found = false;
            for e in 0..st.len() {
                env.firsts.insert(v.clone(), e);
                if eval_inner(st, p, env)? {
                    found = true;
                    break;
                }
            }
            restore_first(env, v, saved);
            found
        }
        Formula::Forall(v, p) => {
            let saved = env.firsts.get(v).copied();
            let mut holds = true;
            for e in 0..st.len() {
                env.firsts.insert(v.clone(), e);
                if !eval_inner(st, p, env)? {
                    holds = false;
                    break;
                }
            }
            restore_first(env, v, saved);
            holds
        }
        Formula::ExistsSet(v, p) => eval_set_quant(st, v, p, env, true)?,
        Formula::ForallSet(v, p) => eval_set_quant(st, v, p, env, false)?,
    })
}

fn restore_first(env: &mut Assignment, v: &Var, saved: Option<usize>) {
    match saved {
        Some(e) => {
            env.firsts.insert(v.clone(), e);
        }
        None => {
            env.firsts.remove(v);
        }
    }
}

fn eval_set_quant(
    st: Structure<'_>,
    v: &Var,
    p: &Formula,
    env: &mut Assignment,
    existential: bool,
) -> Result<bool> {
    let n = st.len();
    if n > MAX_SET_DOMAIN {
        return Err(Error::domain(format!(
            "naive set quantification over a domain of size {n} (max {MAX_SET_DOMAIN})"
        )));
    }
    let saved = env.sets.get(v).cloned();
    let mut result = !existential;
    for mask_bits in 0u32..(1u32 << n) {
        let mask: Vec<bool> = (0..n).map(|i| (mask_bits >> i) & 1 == 1).collect();
        env.sets.insert(v.clone(), mask);
        let holds = eval_inner(st, p, env)?;
        if existential && holds {
            result = true;
            break;
        }
        if !existential && !holds {
            result = false;
            break;
        }
    }
    match saved {
        Some(m) => {
            env.sets.insert(v.clone(), m);
        }
        None => {
            env.sets.remove(v);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use qa_base::Alphabet;
    use qa_trees::sexpr::from_sexpr;

    #[test]
    fn even_length_formula_on_words() {
        // Example 2.2's idea: X = odd positions; even length ⟺ last ∉ X.
        let mut a = Alphabet::new();
        a.intern_str("ab");
        let f = parse(
            "ex2 X. ( (all x. (root(x) -> x in X)) \
             & (all x. all y. (edge(x, y) -> ((x in X -> !(y in X)) & (!(x in X) -> y in X)))) \
             & (all x. (leaf(x) -> !(x in X))) )",
            &mut a,
        )
        .unwrap();
        for len in 1..=8usize {
            let w = vec![a.symbol("a"); len];
            assert_eq!(
                check(Structure::Word(&w), &f).unwrap(),
                len % 2 == 0,
                "length {len}"
            );
        }
    }

    #[test]
    fn label_and_order_on_words() {
        let mut a = Alphabet::new();
        let w = a.intern_str("aba");
        // some b before some a
        let f = parse("ex x. ex y. (label(x, b) & label(y, a) & x < y)", &mut a).unwrap();
        assert!(check(Structure::Word(&w), &f).unwrap());
        let w2 = a.word("ba");
        assert!(check(Structure::Word(&w2), &f).unwrap());
        let w3 = a.word("ab");
        assert!(!check(Structure::Word(&w3), &f).unwrap());
    }

    #[test]
    fn tree_atoms() {
        let mut a = Alphabet::new();
        let t = from_sexpr("(f (g x) y)", &mut a).unwrap();
        // root labeled f with a child labeled g
        let f = parse(
            "ex r. ex c. (root(r) & label(r, f) & edge(r, c) & label(c, g))",
            &mut a,
        )
        .unwrap();
        assert!(check(Structure::Tree(&t), &f).unwrap());
        // sibling order: some g-child before some y-child
        let f = parse("ex u. ex v. (label(u, g) & label(v, y) & u < v)", &mut a).unwrap();
        assert!(check(Structure::Tree(&t), &f).unwrap());
        // y before g: false (only sibling order counts)
        let f = parse("ex u. ex v. (label(u, y) & label(v, g) & u < v)", &mut a).unwrap();
        assert!(!check(Structure::Tree(&t), &f).unwrap());
        // x and y are NOT siblings, so incomparable
        let f = parse(
            "ex u. ex v. (label(u, x) & label(v, y) & (u < v | v < u))",
            &mut a,
        )
        .unwrap();
        assert!(!check(Structure::Tree(&t), &f).unwrap());
    }

    #[test]
    fn unary_query_selects_elements() {
        let mut a = Alphabet::new();
        let t = from_sexpr("(f (g x) x)", &mut a).unwrap();
        let f = parse("label(v, x) & leaf(v)", &mut a).unwrap();
        let sel = query(Structure::Tree(&t), &f, "v").unwrap();
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn select_leaves_if_root_sigma() {
        // the paper's flagship non-bottom-up query (Section 1)
        let mut a = Alphabet::new();
        let f = parse("leaf(v) & (ex r. (root(r) & label(r, sigma)))", &mut a).unwrap();
        let t = from_sexpr("(sigma x (sigma y))", &mut a).unwrap();
        let sel = query(Structure::Tree(&t), &f, "v").unwrap();
        assert_eq!(sel.len(), 2, "both leaves selected");
        let t2 = from_sexpr("(tau x (sigma y))", &mut a).unwrap();
        assert!(query(Structure::Tree(&t2), &f, "v").unwrap().is_empty());
    }

    #[test]
    fn unbound_variables_error() {
        let mut a = Alphabet::new();
        let w = a.intern_str("a");
        let f = parse("x < y", &mut a).unwrap();
        assert!(check(Structure::Word(&w), &f).is_err());
        let f = parse("x in X", &mut a).unwrap();
        let mut env = Assignment::new();
        env.bind("x", 0);
        assert!(eval(Structure::Word(&w), &f, &env).is_err());
    }

    #[test]
    fn set_domain_cap() {
        let mut a = Alphabet::new();
        let w = vec![a.intern("a"); MAX_SET_DOMAIN + 1];
        let f = parse("ex2 X. (all x. x in X)", &mut a).unwrap();
        assert!(check(Structure::Word(&w), &f).is_err());
    }

    #[test]
    fn assignment_bindings() {
        let mut a = Alphabet::new();
        let w = a.intern_str("ab");
        let f = parse("x in X", &mut a).unwrap();
        let mut env = Assignment::new();
        env.bind("x", 1).bind_set("X", &[1], 2);
        assert!(eval(Structure::Word(&w), &f, &env).unwrap());
        env.bind("x", 0);
        assert!(!eval(Structure::Word(&w), &f, &env).unwrap());
    }
}
