//! E10 (Section 5.2 remark): each 2DTAu transition costs time linear in
//! the fanout — slender down transitions via the `x y* z` lookup and
//! regular up transitions via one classifier sweep. Measured as total run
//! time per node on flat trees of growing fanout. Doubles as the second
//! observability parity check: querying through the `Observer`-generic
//! entry point with `NoopObserver` must match the plain entry point to
//! within noise.

use qa_bench::Harness;
use qa_obs::NoopObserver;
use qa_trees::Tree;

fn main() {
    let mut h = Harness::new("e10_transition_cost");
    let sigma = qa_bench::circuit_alphabet();
    let qa = qa_core::unranked::query::example_5_9(&sigma);
    let or = sigma.symbol("OR");
    let zero = sigma.symbol("0");
    let one = sigma.symbol("1");

    for fanout in [32usize, 256, 2048] {
        let mut t = Tree::leaf(or);
        for i in 0..fanout {
            t.add_child(t.root(), if i % 2 == 0 { zero } else { one });
        }
        let plain = h.bench(&format!("flat_or_gate/{fanout}"), || {
            qa.query(&t).unwrap().len()
        });
        let noop = h.bench(&format!("flat_or_gate_noop_obs/{fanout}"), || {
            qa.query_with(&t, &mut NoopObserver).unwrap().len()
        });
        println!(
            "  noop-observer overhead at fanout={fanout}: {:+.1}%",
            (noop / plain - 1.0) * 100.0
        );
    }

    // and a deep/wide mix
    for n in [100usize, 1000] {
        let t = qa_bench::random_circuit(n, n as u64);
        h.bench(&format!("random_circuit/{}", t.num_nodes()), || {
            qa.query(&t).unwrap().len()
        });
    }
}
