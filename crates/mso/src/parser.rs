//! Text syntax for MSO formulas.
//!
//! Grammar (precedence low → high): `<->`, `->`, `|`, `&`, `!`, atoms.
//!
//! ```text
//! phi := 'ex' v '.' phi | 'all' v '.' phi
//!      | 'ex2' V '.' phi | 'all2' V '.' phi
//!      | phi '<->' phi | phi '->' phi | phi '|' phi | phi '&' phi
//!      | '!' phi | '(' phi ')'
//!      | 'label(' v ',' name ')' | 'edge(' v ',' v ')'
//!      | v '<' v | v '=' v | v 'in' V
//!      | 'root(' v ')' | 'leaf(' v ')' | 'true' | 'false'
//! ```
//!
//! Label names are resolved against (and interned into) the given alphabet.

use qa_base::{Alphabet, Error, Result};

use crate::ast::Formula;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Less,
    Eq,
    Not,
    And,
    Or,
    Implies,
    Iff,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '.' => {
                chars.next();
                toks.push(Tok::Dot);
            }
            '!' => {
                chars.next();
                toks.push(Tok::Not);
            }
            '&' => {
                chars.next();
                toks.push(Tok::And);
            }
            '|' => {
                chars.next();
                toks.push(Tok::Or);
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    if chars.next() != Some('>') {
                        return Err(Error::parse("mso", "expected `>` after `<-`"));
                    }
                    toks.push(Tok::Iff);
                } else {
                    toks.push(Tok::Less);
                }
            }
            '-' => {
                chars.next();
                if chars.next() != Some('>') {
                    return Err(Error::parse("mso", "expected `>` after `-`"));
                }
                toks.push(Tok::Implies);
            }
            c if c.is_alphanumeric() || c == '_' || c == '#' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '#' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(name));
            }
            other => {
                return Err(Error::parse(
                    "mso",
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                "mso",
                format!(
                    "expected {t:?}, found {:?} at token {}",
                    self.peek(),
                    self.pos
                ),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(Error::parse(
                "mso",
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    // iff := imp ('<->' imp)*
    fn iff(&mut self) -> Result<Formula> {
        let mut f = self.imp()?;
        while self.peek() == Some(&Tok::Iff) {
            self.pos += 1;
            f = f.iff(self.imp()?);
        }
        Ok(f)
    }

    // imp := or ('->' imp)?   (right associative)
    fn imp(&mut self) -> Result<Formula> {
        let f = self.or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            return Ok(f.implies(self.imp()?));
        }
        Ok(f)
    }

    fn or(&mut self) -> Result<Formula> {
        let mut f = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            f = f.or(self.and()?);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula> {
        let mut f = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            f = f.and(self.unary()?);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Tok::Ident(kw)) if matches!(kw.as_str(), "ex" | "all" | "ex2" | "all2") => {
                let kw = kw.clone();
                self.pos += 1;
                let var = self.ident()?;
                self.expect(Tok::Dot)?;
                let body = self.unary()?;
                Ok(match kw.as_str() {
                    "ex" => Formula::exists(var, body),
                    "all" => Formula::forall(var, body),
                    "ex2" => Formula::exists_set(var, body),
                    _ => Formula::forall_set(var, body),
                })
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula> {
        match self.bump() {
            Some(Tok::LParen) => {
                let f = self.iff()?;
                self.expect(Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "true" => Ok(Formula::True),
                "false" => Ok(Formula::False),
                "label" => {
                    self.expect(Tok::LParen)?;
                    let x = self.ident()?;
                    self.expect(Tok::Comma)?;
                    let l = self.ident()?;
                    self.expect(Tok::RParen)?;
                    let sym = self.alphabet.intern(&l);
                    Ok(Formula::Label(x, sym))
                }
                "edge" | "first_child" | "second_child" | "chain2" => {
                    self.expect(Tok::LParen)?;
                    let x = self.ident()?;
                    self.expect(Tok::Comma)?;
                    let y = self.ident()?;
                    self.expect(Tok::RParen)?;
                    Ok(match name.as_str() {
                        "edge" => Formula::Edge(x, y),
                        "first_child" => Formula::FirstChild(x, y),
                        "second_child" => Formula::SecondChild(x, y),
                        _ => Formula::Chain2(x, y),
                    })
                }
                "root" => {
                    self.expect(Tok::LParen)?;
                    let x = self.ident()?;
                    self.expect(Tok::RParen)?;
                    Ok(Formula::is_root(x))
                }
                "leaf" => {
                    self.expect(Tok::LParen)?;
                    let x = self.ident()?;
                    self.expect(Tok::RParen)?;
                    Ok(Formula::is_leaf(x))
                }
                _ => {
                    // variable atom: v < w | v = w | v in X
                    match self.bump() {
                        Some(Tok::Less) => Ok(Formula::Less(name, self.ident()?)),
                        Some(Tok::Eq) => Ok(Formula::Eq(name, self.ident()?)),
                        Some(Tok::Ident(kw)) if kw == "in" => Ok(Formula::In(name, self.ident()?)),
                        other => Err(Error::parse(
                            "mso",
                            format!("expected `<`, `=` or `in` after `{name}`, found {other:?}"),
                        )),
                    }
                }
            },
            other => Err(Error::parse("mso", format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse an MSO formula, interning label names into `alphabet`.
///
/// ```
/// use qa_base::Alphabet;
/// let mut sigma = Alphabet::new();
/// let f = qa_mso::parse("ex x. (label(x, a) & leaf(x))", &mut sigma).unwrap();
/// assert_eq!(f.free_vars().len(), 0);
/// ```
pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<Formula> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        alphabet,
    };
    let f = p.iff()?;
    if p.pos != p.toks.len() {
        return Err(Error::parse(
            "mso",
            format!("trailing tokens at {} in `{input}`", p.pos),
        ));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;

    #[test]
    fn parses_quantifiers_and_connectives() {
        let mut a = Alphabet::new();
        let f = parse("ex x. all y. (edge(x, y) -> !label(y, b))", &mut a).unwrap();
        assert!(matches!(f, Formula::Exists(_, _)));
        assert!(a.get("b").is_some());
    }

    #[test]
    fn parses_even_length_example_2_2() {
        // the paper's Example 2.2, adapted to min/max-free form
        let mut a = Alphabet::new();
        let f = parse(
            "ex2 X. ( (all x. (root(x) -> x in X)) \
             & (all x. all y. ((x in X & edge(x, y)) -> !(y in X))) \
             & (all x. all y. ((!(x in X) & edge(x, y)) -> y in X)) \
             & (all x. (leaf(x) -> !(x in X))) )",
            &mut a,
        )
        .unwrap();
        assert!(f.free_vars().is_empty());
    }

    #[test]
    fn operator_precedence() {
        let mut a = Alphabet::new();
        // `p & q | r` = `(p & q) | r`
        let f = parse("x = x & y = y | x < y", &mut a).unwrap();
        assert!(matches!(f, Formula::Or(_, _)));
        // `p -> q -> r` right-assoc
        let f = parse("x = x -> y = y -> x < y", &mut a).unwrap();
        if let Formula::Or(_, rhs) = f {
            assert!(matches!(*rhs, Formula::Or(_, _)));
        } else {
            panic!("implies desugars to or");
        }
    }

    #[test]
    fn membership_and_order_atoms() {
        let mut a = Alphabet::new();
        assert_eq!(
            parse("x in X", &mut a).unwrap(),
            Formula::In("x".into(), "X".into())
        );
        assert_eq!(
            parse("x < y", &mut a).unwrap(),
            Formula::Less("x".into(), "y".into())
        );
        assert_eq!(
            parse("x = y", &mut a).unwrap(),
            Formula::Eq("x".into(), "y".into())
        );
    }

    #[test]
    fn errors() {
        let mut a = Alphabet::new();
        assert!(parse("", &mut a).is_err());
        assert!(parse("ex x", &mut a).is_err());
        assert!(parse("label(x)", &mut a).is_err());
        assert!(parse("x <", &mut a).is_err());
        assert!(parse("(x = y", &mut a).is_err());
        assert!(parse("x = y)", &mut a).is_err());
        assert!(parse("x ~ y", &mut a).is_err());
    }
}
